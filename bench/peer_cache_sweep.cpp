// Peer-cache sweep — multi-epoch cooperative-cache benchmark: three DLFS
// clients on their own nodes read a shared dataset staged on ONE storage
// node, with the cooperative peer cache on vs off.
//
// Epoch 1 (cold) pulls every sample over the storage node's single NIC
// and leaves each client's strided share resident in its sample cache.
// Every later epoch reshuffles with a fresh seed, so roughly (k-1)/k of
// each client's new share is resident only at a peer client: with the
// peer cache on those samples are pulled from peer DRAM over the fabric
// (spread across the client NICs) instead of re-reading the replica
// path, so the fleet's aggregate warm-epoch bandwidth is no longer bound
// by the storage node's single NIC.
//
// The run fails (exit 1) unless, on the same seeds:
//  * every epoch in both modes delivers every sample exactly once, with
//    zero skips and byte-identical content vs the canonical dataset;
//  * the peer-on run records peer_hits_remote > 0;
//  * warm epochs (2..N) are faster with the peer cache on than off.
//
// Always writes BENCH_peer_cache_sweep.json (one row per mode x epoch).
//
// Flags:
//   --seed N     base shuffle seed (epoch e uses seed N+e-1; default 1)
//   --epochs N   epochs per mode (default 4)
//   --smoke      shrunken run for CI (3 epochs, small dataset)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

namespace {

constexpr std::uint32_t kClients = 3;
constexpr std::uint32_t kSampleBytes = 64 * 1024;
constexpr std::size_t kBatch = 16;

struct SweepParams {
  std::uint64_t seed = 1;
  std::uint32_t epochs = 4;
  std::size_t samples = 3072;
  std::size_t cache_chunks = 1100;  // >= per-client share (+ slack)
};

dlfs::core::DlfsConfig sweep_config(const SweepParams& p, bool peer_on) {
  dlfs::core::DlfsConfig c;
  c.batching = dlfs::core::BatchingMode::kSampleLevel;
  c.chunk_bytes = kSampleBytes;  // one cache chunk per sample
  c.cache_chunks = p.cache_chunks;
  // Pool must hold the resident share plus prefetch staging.
  c.pool_bytes = (p.cache_chunks + 512) * std::uint64_t{kSampleBytes};
  c.peer_cache.enabled = peer_on;
  return c;
}

// One storage node (0) and one client per remaining node; RAM-backed
// store so delivered bytes can be checked against the dataset content.
struct SweepRig {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  SweepRig(std::size_t samples, const dlfs::core::DlfsConfig& cfg)
      : cluster(sim, kClients + 1, node_config()),
        ds(dlfs::dataset::make_fixed_size_dataset(samples, kSampleBytes)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg, /*client_nodes=*/{1, 2, 3},
              /*storage_nodes=*/{0}) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig node_config() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 512_MiB;
    return nc;
  }
};

struct EpochLog {
  std::vector<std::uint32_t> order;
  std::uint64_t skipped = 0;
  bool content_ok = true;
};

struct EpochResult {
  dlsim::SimDuration elapsed = 0;
  std::uint64_t served = 0;
  std::uint64_t skipped = 0;
  bool content_ok = true;
  bool exactly_once = true;
  // Per-epoch deltas of the fleet-summed cumulative instance counters.
  std::uint64_t peer_hits_local = 0;
  std::uint64_t peer_hits_remote = 0;
  std::uint64_t peer_misses = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

Task<void> run_epoch_logged(const dlfs::dataset::Dataset& ds,
                            dlfs::core::DlfsInstance& inst, EpochLog& log) {
  std::vector<std::byte> arena(kBatch * kSampleBytes);
  std::vector<std::byte> want;
  for (;;) {
    auto b = co_await inst.bread(kBatch, arena);
    if (b.end_of_epoch) break;
    for (const auto& s : b.samples) {
      log.order.push_back(s.sample_id);
      want.resize(s.len);
      ds.fill_content(s.sample_id, 0, want);
      if (std::memcmp(arena.data() + s.offset_in_arena, want.data(), s.len) !=
          0) {
        log.content_ok = false;
      }
    }
    log.skipped += b.samples_skipped;
  }
}

struct PeerTally {
  std::uint64_t hits_local = 0;
  std::uint64_t hits_remote = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

PeerTally fleet_tally(dlfs::core::DlfsFleet& fleet) {
  PeerTally t;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    const auto st = fleet.instance(c).stats();
    t.hits_local += st.peer_hits_local;
    t.hits_remote += st.peer_hits_remote;
    t.misses += st.peer_misses;
    t.bytes += st.peer_bytes;
    t.cache_hits += fleet.instance(c).cache().hits();
    t.cache_misses += fleet.instance(c).cache().misses();
  }
  return t;
}

// Runs `epochs` epochs on a fresh rig; epoch e shuffles with seed
// base+e-1, all clients in lockstep (the run_watchdog drain between
// epochs is the epoch barrier every client already observes).
std::vector<EpochResult> run_mode(const SweepParams& p, bool peer_on) {
  SweepRig rig(p.samples, sweep_config(p, peer_on));
  std::vector<EpochResult> out;
  PeerTally prev{};
  for (std::uint32_t e = 1; e <= p.epochs; ++e) {
    for (std::uint32_t c = 0; c < kClients; ++c) {
      rig.fleet.instance(c).sequence(p.seed + e - 1);
    }
    std::vector<EpochLog> logs(kClients);
    const dlsim::SimTime t0 = rig.sim.now();
    for (std::uint32_t c = 0; c < kClients; ++c) {
      rig.sim.spawn(run_epoch_logged(rig.ds, rig.fleet.instance(c), logs[c]),
                    "peer-sweep-client");
    }
    rig.sim.run_watchdog(rig.sim.now() + 600_sec);
    rig.sim.rethrow_failures();

    EpochResult r;
    r.elapsed = rig.sim.now() - t0;
    std::vector<std::uint32_t> delivered(p.samples, 0);
    for (const auto& log : logs) {
      r.served += log.order.size();
      r.skipped += log.skipped;
      if (!log.content_ok) r.content_ok = false;
      for (const std::uint32_t id : log.order) ++delivered[id];
    }
    for (const std::uint32_t n : delivered) {
      if (n != 1) r.exactly_once = false;
    }
    const PeerTally now = fleet_tally(rig.fleet);
    r.peer_hits_local = now.hits_local - prev.hits_local;
    r.peer_hits_remote = now.hits_remote - prev.hits_remote;
    r.peer_misses = now.misses - prev.misses;
    r.peer_bytes = now.bytes - prev.bytes;
    r.cache_hits = now.cache_hits - prev.cache_hits;
    r.cache_misses = now.cache_misses - prev.cache_misses;
    prev = now;
    out.push_back(r);
  }
  return out;
}

double aggregate_bytes_per_sec(const EpochResult& r) {
  const double secs = dlsim::to_seconds(r.elapsed);
  return secs > 0
             ? static_cast<double>(r.served) * kSampleBytes / secs
             : 0.0;
}

void add_report_row(dlfs::bench::JsonReport& report, bool peer_on,
                    std::uint32_t epoch, const EpochResult& r) {
  dlfs::bench::RunResult row;
  row.elapsed = r.elapsed;
  row.samples = r.served;
  row.samples_per_sec =
      static_cast<double>(r.served) / dlsim::to_seconds(r.elapsed);
  row.bytes_per_sec = aggregate_bytes_per_sec(r);
  row.samples_skipped = r.skipped;
  row.cache_hits = r.cache_hits;
  row.cache_misses = r.cache_misses;
  row.peer_hits_local = r.peer_hits_local;
  row.peer_hits_remote = r.peer_hits_remote;
  row.peer_misses = r.peer_misses;
  row.peer_bytes = r.peer_bytes;
  report.add(std::string("peer=") + (peer_on ? "on" : "off") +
                 " epoch=" + std::to_string(epoch),
             row);
}

int run_sweep(const SweepParams& p) {
  dlfs::print_banner("Peer-cache sweep: warm-epoch bandwidth, peer on vs off");
  std::printf("clients=%u samples=%zu sample_bytes=%u epochs=%u seed=%" PRIu64
              "\n",
              kClients, p.samples, kSampleBytes, p.epochs,
              static_cast<std::uint64_t>(p.seed));

  const std::vector<EpochResult> off = run_mode(p, /*peer_on=*/false);
  const std::vector<EpochResult> on = run_mode(p, /*peer_on=*/true);

  // Both runs share the storage NIC's line rate as the replica-path
  // ceiling; report warm-epoch aggregates against it.
  double nic_bw = 0.0;
  {
    SweepRig probe(16, sweep_config(p, false));
    nic_bw = probe.cluster.fabric().params().bw_bytes_per_sec;
  }

  dlfs::bench::JsonReport report("peer_cache_sweep");
  dlfs::Table table({"epoch", "mode", "epoch_ms", "agg_GBps", "peer_local",
                     "peer_remote", "peer_miss", "skipped"});
  bool delivery_ok = true;
  for (std::uint32_t e = 0; e < p.epochs; ++e) {
    for (const bool peer_on : {false, true}) {
      const EpochResult& r = peer_on ? on[e] : off[e];
      if (r.served != p.samples || r.skipped != 0 || !r.content_ok ||
          !r.exactly_once) {
        delivery_ok = false;
      }
      add_report_row(report, peer_on, e + 1, r);
      table.add_row({dlfs::Table::integer(e + 1), peer_on ? "on" : "off",
                     dlfs::Table::num(dlsim::to_micros(r.elapsed) / 1e3, 2),
                     dlfs::Table::num(aggregate_bytes_per_sec(r) / 1e9, 2),
                     dlfs::Table::integer(r.peer_hits_local),
                     dlfs::Table::integer(r.peer_hits_remote),
                     dlfs::Table::integer(r.peer_misses),
                     dlfs::Table::integer(r.skipped)});
    }
  }
  table.print();
  std::printf("wrote %s\n", report.write().c_str());

  // Warm-epoch comparison: mean over epochs 2..N on the same seeds.
  double warm_on = 0.0, warm_off = 0.0;
  std::uint64_t remote_hits = 0;
  for (std::uint32_t e = 1; e < p.epochs; ++e) {
    warm_on += aggregate_bytes_per_sec(on[e]);
    warm_off += aggregate_bytes_per_sec(off[e]);
    remote_hits += on[e].peer_hits_remote;
  }
  warm_on /= static_cast<double>(p.epochs - 1);
  warm_off /= static_cast<double>(p.epochs - 1);
  std::printf("warm epochs (2..%u): peer-off %.2f GB/s, peer-on %.2f GB/s "
              "(%.2fx), storage-NIC line rate %.2f GB/s\n",
              p.epochs, warm_off / 1e9, warm_on / 1e9,
              warm_off > 0 ? warm_on / warm_off : 0.0, nic_bw / 1e9);
  if (warm_on > nic_bw) {
    std::printf("peer-on warm aggregate exceeds the single-NIC storage "
                "ceiling\n");
  }

  bool ok = true;
  if (!delivery_ok) {
    std::fprintf(stderr, "FAIL: an epoch skipped, duplicated or corrupted "
                         "samples\n");
    ok = false;
  }
  if (remote_hits == 0) {
    std::fprintf(stderr, "FAIL: peer-on run recorded no remote peer hits\n");
    ok = false;
  }
  if (warm_on <= warm_off) {
    std::fprintf(stderr, "FAIL: warm epochs did not speed up with the peer "
                         "cache on\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepParams p;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      p.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      p.epochs = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      p.epochs = 3;
      p.samples = 768;
      p.cache_chunks = 320;
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--epochs N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (p.epochs < 2) {
    std::fprintf(stderr, "need at least 2 epochs for a warm-epoch compare\n");
    return 2;
  }
  return run_sweep(p);
}

// Host-time microbenchmark (google-benchmark): the AVL sample directory
// against std::map. This measures *real* nanoseconds on this machine —
// it is what justifies the 150 ns dir_lookup constant in
// common/calibration.hpp (see DESIGN.md §5).

#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.hpp"
#include "dlfs/avl_tree.hpp"
#include "dlfs/sample_entry.hpp"

namespace {

using dlfs::core::AvlTree;
using dlfs::core::SampleEntry;

std::vector<std::uint64_t> keys_for(std::size_t n) {
  dlfs::Rng rng(42);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next() & SampleEntry::kKeyMask;
  return keys;
}

void BM_AvlInsert(benchmark::State& state) {
  const auto keys = keys_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    AvlTree<std::uint64_t, SampleEntry> tree;
    for (auto k : keys) {
      benchmark::DoNotOptimize(tree.insert(k, SampleEntry(0, k, 0, 1)));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_AvlInsert)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_AvlLookup(benchmark::State& state) {
  const auto keys = keys_for(static_cast<std::size_t>(state.range(0)));
  AvlTree<std::uint64_t, SampleEntry> tree;
  for (auto k : keys) (void)tree.insert(k, SampleEntry(0, k, 0, 1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvlLookup)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_StdMapLookup(benchmark::State& state) {
  const auto keys = keys_for(static_cast<std::size_t>(state.range(0)));
  std::map<std::uint64_t, SampleEntry> tree;
  for (auto k : keys) tree.emplace(k, SampleEntry(0, k, 0, 1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapLookup)->Arg(1 << 14)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();

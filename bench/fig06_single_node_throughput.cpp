// Fig. 6 — Random-read sample throughput on a single node with a local
// NVMe device, sample sizes 512 B .. 1 MB.
//
// Series (as in the paper):
//   Ext4-Base : one reader thread on one core through the kernel FS
//   Ext4-MC   : four reader threads on four cores
//   DLFS-Base : synchronous dlfs_read per sample (no batching)
//   DLFS      : full opportunistic batching (chunk-level + read-ahead)
//
// Paper headlines checked at the bottom:
//   * DLFS-Base >= 1.82x Ext4-Base for samples <= 4 KB
//   * DLFS >= ~3.35x Ext4-MC for small samples
//   * Ext4-Base ~43.8% below DLFS at large sample sizes

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using dlfs::bench::RunResult;
using dlfs::bench::Workload;
using namespace dlfs::byte_literals;

namespace {

std::size_t samples_for(std::uint64_t size) {
  // Enough samples to reach steady state; bounded host time.
  const std::uint64_t target_bytes = 24_MiB;
  return static_cast<std::size_t>(
      std::clamp<std::uint64_t>(target_bytes / size, 128, 16384));
}

}  // namespace

int main() {
  dlfs::print_banner("Fig 6: single-node random-read sample throughput");

  const std::vector<std::uint64_t> sizes = {512,    4_KiB,  16_KiB, 64_KiB,
                                            128_KiB, 512_KiB, 1_MiB};
  Table t({"sample", "Ext4-Base", "Ext4-MC", "DLFS-Base", "DLFS",
           "unit"});
  struct Row {
    double ext4_base, ext4_mc, dlfs_base, dlfs;
  };
  std::vector<Row> rows;

  for (auto size : sizes) {
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = static_cast<std::uint32_t>(size);
    w.samples_per_node = samples_for(size);

    dlfs::core::DlfsConfig base_cfg;
    base_cfg.batching = dlfs::core::BatchingMode::kNone;
    base_cfg.cache_chunks = 1;  // no cache reuse in the throughput sweep
    // DLFS-Base is the paper's synchronous per-sample series; keep the
    // generalized async daemon out of it.
    base_cfg.prefetch.enabled = false;
    dlfs::core::DlfsConfig full_cfg;
    full_cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
    full_cfg.cache_chunks = 1;

    Row r{};
    r.ext4_base = dlfs::bench::run_ext4(w, 1).samples_per_sec;
    r.ext4_mc = dlfs::bench::run_ext4(w, 4).samples_per_sec;
    r.dlfs_base = dlfs::bench::run_dlfs(w, base_cfg).samples_per_sec;
    r.dlfs = dlfs::bench::run_dlfs(w, full_cfg).samples_per_sec;
    rows.push_back(r);
    t.add_row({dlfs::format_bytes(size), Table::num(r.ext4_base / 1e3, 1),
               Table::num(r.ext4_mc / 1e3, 1),
               Table::num(r.dlfs_base / 1e3, 1), Table::num(r.dlfs / 1e3, 1),
               "Ksamples/s"});
  }
  t.print();

  // Headline comparisons.
  std::printf("\npaper-vs-measured headlines\n");
  double min_base_ratio = 1e9;
  for (std::size_t i = 0; i < 2; ++i) {  // 512 B, 4 KiB
    min_base_ratio =
        std::min(min_base_ratio, rows[i].dlfs_base / rows[i].ext4_base);
  }
  std::printf("  DLFS-Base / Ext4-Base (<=4KB):  paper >= 1.82x | measured %.2fx\n",
              min_base_ratio);
  double min_mc_ratio = 1e9;
  for (std::size_t i = 0; i < 2; ++i) {  // <= 4 KiB
    min_mc_ratio = std::min(min_mc_ratio, rows[i].dlfs / rows[i].ext4_mc);
  }
  std::printf("  DLFS / Ext4-MC (<=4KB):         paper ~3.35x   | measured %.2fx\n",
              min_mc_ratio);
  const auto& last = rows.back();
  std::printf("  Ext4-Base below DLFS (1 MiB):   paper 43.8%%    | measured %.1f%%\n",
              (1.0 - last.ext4_base / last.dlfs) * 100.0);
  return 0;
}

// Fig. 7 — DLFS CPU utilization.
//
// (a) Bandwidth vs core count (one I/O thread per core): DLFS saturates
//     the device from a single core; Ext4 needs three or more.
// (b) How much application computation can be folded into DLFS's polling
//     loop before throughput drops: ~the batch's device time (paper:
//     ~2 ms for 32 x 128 KB; less for 16 KB; 512 B behaves like a large
//     sample because the actual I/O requests are chunk-sized).

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using dlfs::bench::Workload;
using namespace dlfs::byte_literals;
using namespace dlsim::literals;

int main() {
  dlfs::print_banner("Fig 7a: bandwidth vs core count (device: 2.5 GB/s)");

  const std::vector<std::uint32_t> cores = {1, 2, 3, 4, 8};
  for (std::uint64_t size : {4_KiB, 128_KiB}) {
    Table t({"cores", "Ext4 GB/s", "DLFS GB/s", "Ext4 util", "DLFS util"});
    for (auto k : cores) {
      Workload w;
      w.num_nodes = 1;
      w.sample_bytes = static_cast<std::uint32_t>(size);
      w.samples_per_node = size <= 4_KiB ? 12288 : 768;

      auto ext4 = dlfs::bench::run_ext4(w, k);

      Workload wd = w;
      wd.clients = k;  // k DLFS I/O threads, one core each, on one node
      dlfs::core::DlfsConfig cfg;
      cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
      auto dl = dlfs::bench::run_dlfs(wd, cfg);

      t.add_row({Table::integer(k), Table::num(ext4.bytes_per_sec / 1e9, 2),
                 Table::num(dl.bytes_per_sec / 1e9, 2),
                 Table::num(ext4.client_cpu_util, 2),
                 Table::num(dl.client_cpu_util, 2)});
    }
    std::printf("\nsample size %s\n", dlfs::format_bytes(size).c_str());
    t.print();
  }
  std::printf(
      "paper: DLFS saturates with 1 core; Ext4 needs >= 3 cores for small "
      "samples\n");

  dlfs::print_banner("Fig 7b: compute folded into the polling loop");
  const std::vector<dlsim::SimDuration> injected = {
      0,      100_us, 250_us, 500_us, 1_ms,
      1500_us, 2_ms,  3_ms,   5_ms};
  for (std::uint64_t size : {512_B, 16_KiB, 128_KiB}) {
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = static_cast<std::uint32_t>(size);
    w.samples_per_node = size <= 4_KiB ? 16384 : (size <= 16_KiB ? 4096 : 512);
    dlfs::core::DlfsConfig cfg;
    cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
    const double base =
        dlfs::bench::run_dlfs(w, cfg, 0).samples_per_sec;
    Table t({"added compute", "Ksamples/s", "relative"});
    for (auto inj : injected) {
      const double s =
          inj == 0 ? base
                   : dlfs::bench::run_dlfs(w, cfg, inj).samples_per_sec;
      t.add_row({Table::num(dlsim::to_millis(inj), 2) + " ms",
                 Table::num(s / 1e3, 1), Table::num(s / base, 2)});
    }
    std::printf("\nsample size %s (batch 32)\n",
                dlfs::format_bytes(size).c_str());
    t.print();
  }
  std::printf(
      "paper: 128KB unaffected to ~2ms; 16KB drops earlier; 512B behaves "
      "like a large sample thanks to chunk-sized I/O\n");
  return 0;
}

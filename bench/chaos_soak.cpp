// Chaos soak — randomized, seeded fault schedules against a replicated
// DLFS fleet, asserting the self-healing invariants end to end:
//
//  * every epoch completes with samples_skipped == 0 (replication k = 2,
//    at most k-1 nodes concurrently dead, crashes spaced past the repair
//    drain, so no sample ever loses its last live copy);
//  * every epoch's delivery is byte-identical to a fault-free reference
//    run (same sample order, same arena offsets, same contents);
//  * after the schedule drains, every declared-dead node has rejoined and
//    the repair backlog is empty;
//  * the simulation quiesces inside the watchdog deadline (no hung
//    coroutine, no orphaned timer).
//
// The schedule derives entirely from --seed, so a CI failure replays
// exactly from the seed in the log. The run always writes
// CHAOS_soak_seed<seed>.json (schedule + per-epoch results + final
// stats) for CI to upload as a failure artifact.
//
// Flags:
//   --seed N         schedule + shuffle seed (default 1)
//   --epochs N       epochs in the soak (default 5)
//   --smoke          shrunken run for CI (3 epochs, small dataset)
//   --repair-sweep   instead of the soak, sweep the repair-bandwidth
//                    budget under concurrent demand reads and verify the
//                    repair engine never exceeds its budget

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

namespace {

struct SoakParams {
  std::uint64_t seed = 1;
  std::uint32_t epochs = 5;
  // Epochs must be long enough (tens of simulated ms) to host crash
  // detection (~10 ms of timeouts) plus the declaration deadline while
  // demand traffic still flows.
  std::size_t samples = 32768;
};

// One fault event: after `gap` (measured from the previous event's heal,
// plus a wait for the repair backlog to drain), crash `node` for
// `outage`. Long outages cross declare_dead_after and exercise the
// declare -> re-replicate -> rejoin cycle; short ones stay transient.
struct ChaosEvent {
  dlsim::SimDuration gap = 0;
  std::uint16_t node = 0;
  dlsim::SimDuration outage = 0;
};

struct EpochLog {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;
  std::uint64_t skipped = 0;
  bool content_ok = true;
};

dlfs::core::DlfsConfig soak_config() {
  dlfs::core::DlfsConfig c;
  c.batching = dlfs::core::BatchingMode::kChunkLevel;
  c.fault.replication = dlfs::core::ReplicationConfig(2);
  c.fault.replication.declare_dead_after = 6_ms;
  c.fault.reprobe_interval = 2_ms;
  // Shrunken transport fault budget (as in the fault tests) so a crash is
  // detected within a few simulated milliseconds.
  c.fault.nvmf.command_timeout = 5_ms;
  c.fault.nvmf.reconnect_backoff = 200_us;
  c.fault.nvmf.reconnect_backoff_max = 1_ms;
  c.fault.nvmf.reconnect_attempts = 4;
  return c;
}

// Four storage nodes and one pure client; RAM-backed stores so delivered
// bytes can be checked against the canonical dataset content.
struct SoakRig {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  SoakRig(std::size_t samples, const dlfs::core::DlfsConfig& cfg)
      : cluster(sim, 5, node_config()),
        ds(dlfs::dataset::make_fixed_size_dataset(samples, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg, /*client_nodes=*/{4},
              /*storage_nodes=*/{0, 1, 2, 3}) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig node_config() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }
};

Task<void> run_epoch_logged(const dlfs::dataset::Dataset& ds,
                            dlfs::core::DlfsInstance& inst, EpochLog& log) {
  std::vector<std::byte> arena(64_KiB);
  std::vector<std::byte> want;
  for (;;) {
    auto b = co_await inst.bread(16, arena);
    if (b.end_of_epoch) break;
    for (const auto& s : b.samples) {
      log.order.push_back(s.sample_id);
      log.offsets.push_back(s.offset_in_arena);
      want.resize(s.len);
      ds.fill_content(s.sample_id, 0, want);
      if (std::memcmp(arena.data() + s.offset_in_arena, want.data(), s.len) !=
          0) {
        log.content_ok = false;
      }
    }
    log.skipped += b.samples_skipped;
  }
}

// Applies the schedule one event at a time. The wait before each crash
// is the safety spacing from the issue: the next node is only lost after
// the previous loss has been fully repaired AND the client again sees
// every node as up — the client's view is what failover routes on, and
// it lags a target heal by a reprobe interval, so gating on the target
// state alone would overlap outages from the reader's perspective and
// can drop a sample's last reachable copy.
Task<void> chaos_driver(SoakRig& rig, const std::vector<ChaosEvent>& schedule,
                        bool& done) {
  auto& engine = rig.fleet.instance(0).engine();
  for (const auto& ev : schedule) {
    co_await rig.sim.delay(ev.gap);
    bool safe = false;
    while (!safe) {
      const bool healed = engine.nodes_down() == 0 &&
                          rig.fleet.num_declared_dead() == 0 &&
                          rig.fleet.repair_backlog().empty();
      if (healed) {
        safe = true;
      } else {
        co_await rig.sim.delay(1_ms);
      }
    }
    rig.fleet.target(ev.node)->crash();
    co_await rig.sim.delay(ev.outage);
    rig.fleet.target(ev.node)->recover();
  }
  done = true;
}

Task<void> soak_epochs(SoakRig& rig, std::uint32_t epochs,
                       std::vector<EpochLog>& logs, const bool& chaos_done) {
  auto& inst = rig.fleet.instance(0);
  for (std::uint32_t e = 0; e < epochs; ++e) {
    inst.sequence(e + 1);
    co_await run_epoch_logged(rig.ds, inst, logs[e]);
  }
  // Teardown: let the schedule finish, then wait for reconciliation —
  // every declared-dead node back in, repair backlog empty. Bounded by
  // the caller's watchdog.
  while (!chaos_done) co_await rig.sim.delay(1_ms);
  bool settled = false;
  while (!settled) {
    const bool clean = rig.fleet.num_declared_dead() == 0 &&
                       rig.fleet.repair_backlog().empty();
    if (clean) {
      settled = true;
    } else {
      co_await rig.sim.delay(1_ms);
    }
  }
}

// The schedule is scaled to the measured fault-free epoch length so the
// faults land while demand traffic is flowing: detection is timeout
// driven, so a crash only matters if reads keep hitting the dead node.
// One short blip first (transient path: detected or absorbed, healed
// before declare_dead_after), then one long outage per epoch, early in
// the epoch and lasting most of it — long enough for detection
// (~10-15 ms of timeouts) plus the 6 ms declaration deadline, so every
// seed provably drives the declare -> re-replicate -> rejoin cycle.
std::vector<ChaosEvent> make_schedule(const SoakParams& p,
                                      dlsim::SimDuration epoch) {
  dlfs::Rng rng(p.seed);
  std::vector<ChaosEvent> schedule;
  auto frac = [&](double lo, double hi) {
    const double f = lo + (hi - lo) * rng.next_double();
    return static_cast<dlsim::SimDuration>(static_cast<double>(epoch) * f);
  };
  ChaosEvent blip;
  blip.gap = 2_ms + static_cast<dlsim::SimDuration>(rng.next_below(3)) * 1_ms;
  blip.node = static_cast<std::uint16_t>(rng.next_below(4));
  blip.outage =
      1_ms + static_cast<dlsim::SimDuration>(rng.next_below(3)) * 1_ms;
  schedule.push_back(blip);
  for (std::uint32_t e = 0; e < p.epochs; ++e) {
    ChaosEvent ev;
    ev.gap = frac(0.05, 0.15);
    ev.node = static_cast<std::uint16_t>(rng.next_below(4));
    // Floor at 25 ms: detection (~10 ms) + declaration (6 ms) must land
    // well inside the outage or the node heals before it is ever
    // declared and the repair path goes untested.
    ev.outage = std::max<dlsim::SimDuration>(frac(0.7, 1.1), 25_ms);
    schedule.push_back(ev);
  }
  return schedule;
}

void write_artifact(const SoakParams& p, const std::vector<ChaosEvent>& sched,
                    const std::vector<EpochLog>& logs,
                    const std::vector<bool>& matched,
                    const dlfs::core::InstanceStats& st, bool passed) {
  const std::string path =
      "CHAOS_soak_seed" + std::to_string(p.seed) + ".json";
  std::ofstream out(path);
  out << "{\n  \"seed\": " << p.seed << ",\n  \"epochs\": " << p.epochs
      << ",\n  \"passed\": " << (passed ? "true" : "false")
      << ",\n  \"schedule\": [\n";
  for (std::size_t i = 0; i < sched.size(); ++i) {
    out << "    {\"gap_us\": " << dlsim::to_micros(sched[i].gap)
        << ", \"node\": " << sched[i].node
        << ", \"outage_us\": " << dlsim::to_micros(sched[i].outage) << "}"
        << (i + 1 < sched.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"epoch_results\": [\n";
  for (std::size_t e = 0; e < logs.size(); ++e) {
    out << "    {\"served\": " << logs[e].order.size()
        << ", \"skipped\": " << logs[e].skipped
        << ", \"content_ok\": " << (logs[e].content_ok ? "true" : "false")
        << ", \"matches_reference\": " << (matched[e] ? "true" : "false")
        << "}" << (e + 1 < logs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"stats\": {\"samples_skipped\": " << st.samples_skipped
      << ", \"nodes_declared_dead\": " << st.nodes_declared_dead
      << ", \"samples_rereplicated\": " << st.samples_rereplicated
      << ", \"repair_bytes\": " << st.repair_bytes
      << ", \"repair_throttles\": " << st.repair_throttles << "}\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int run_soak(const SoakParams& p) {
  dlfs::print_banner("Chaos soak: seeded fault schedule, self-healing fleet");
  std::printf("seed=%" PRIu64 " epochs=%u samples=%zu\n",
              static_cast<std::uint64_t>(p.seed), p.epochs, p.samples);

  // Fault-free reference run: the chaos run must reproduce these epochs
  // byte for byte; its measured epoch length also scales the schedule.
  std::vector<EpochLog> good(p.epochs);
  dlsim::SimDuration epoch_len = 0;
  {
    SoakRig healthy(p.samples, soak_config());
    auto& inst = healthy.fleet.instance(0);
    const dlsim::SimTime t0 = healthy.sim.now();
    healthy.sim.spawn(
        [](SoakRig& r, dlfs::core::DlfsInstance& inst,
           std::vector<EpochLog>& logs, std::uint32_t epochs) -> Task<void> {
          for (std::uint32_t e = 0; e < epochs; ++e) {
            inst.sequence(e + 1);
            co_await run_epoch_logged(r.ds, inst, logs[e]);
          }
        }(healthy, inst, good, p.epochs),
        "reference-epochs");
    healthy.sim.run();
    healthy.sim.rethrow_failures();
    epoch_len = (healthy.sim.now() - t0) / p.epochs;
  }
  std::printf("reference epoch: %.1fms\n", dlsim::to_micros(epoch_len) / 1e3);

  const auto schedule = make_schedule(p, epoch_len);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::printf("  event %zu: +%.1fms crash node %u for %.1fms\n", i,
                dlsim::to_micros(schedule[i].gap) / 1e3, schedule[i].node,
                dlsim::to_micros(schedule[i].outage) / 1e3);
  }

  SoakRig rig(p.samples, soak_config());
  rig.sim.seed_rng(p.seed);  // reconnect jitter follows the soak seed
  std::vector<EpochLog> logs(p.epochs);
  bool chaos_done = false;
  rig.sim.spawn(chaos_driver(rig, schedule, chaos_done), "chaos-driver");
  rig.sim.spawn(soak_epochs(rig, p.epochs, logs, chaos_done), "soak-epochs");

  bool watchdog_ok = true;
  std::string watchdog_msg;
  try {
    rig.sim.run_watchdog(rig.sim.now() + 300_sec);
    rig.sim.rethrow_failures();
  } catch (const std::exception& e) {
    watchdog_ok = false;
    watchdog_msg = e.what();
  }

  auto& inst = rig.fleet.instance(0);
  const auto st = inst.stats();
  std::vector<bool> matched(p.epochs, false);
  bool epochs_ok = true;
  for (std::uint32_t e = 0; e < p.epochs; ++e) {
    matched[e] = logs[e].order == good[e].order &&
                 logs[e].offsets == good[e].offsets && logs[e].content_ok;
    if (logs[e].skipped != 0 || !matched[e]) epochs_ok = false;
    std::printf("epoch %u: served=%zu skipped=%" PRIu64 " byte_identical=%s\n",
                e + 1, logs[e].order.size(),
                static_cast<std::uint64_t>(logs[e].skipped),
                matched[e] ? "yes" : "NO");
  }
  const bool backlog_empty = rig.fleet.repair_backlog().empty();
  const bool all_rejoined = rig.fleet.num_declared_dead() == 0;
  // The schedule is constructed so at least one outage crosses the
  // declaration deadline under traffic — a soak that never repaired
  // anything did not test the repair engine and fails.
  const bool repair_exercised =
      st.nodes_declared_dead > 0 && st.samples_rereplicated > 0;
  const bool passed = watchdog_ok && epochs_ok && st.samples_skipped == 0 &&
                      backlog_empty && all_rejoined && repair_exercised;
  std::printf("declared_dead=%" PRIu64 " rereplicated=%" PRIu64
              " repair_bytes=%" PRIu64 " backlog_empty=%s rejoined=%s\n",
              st.nodes_declared_dead, st.samples_rereplicated, st.repair_bytes,
              backlog_empty ? "yes" : "NO", all_rejoined ? "yes" : "NO");
  if (!watchdog_ok) {
    std::fprintf(stderr, "FAIL: watchdog tripped: %s\n", watchdog_msg.c_str());
  }
  write_artifact(p, schedule, logs, matched, st, passed);
  if (!passed) {
    std::fprintf(stderr, "FAIL: chaos soak invariants violated (seed=%" PRIu64
                         ")\n",
                 static_cast<std::uint64_t>(p.seed));
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// Demand-vs-repair: one storage node is declared dead by fiat at epoch
// start; the repair engine re-replicates its shard while a client reads a
// full epoch. The sweep verifies the budget is a ceiling on the repair
// engine's streaming rate and that demand reads still see every sample.
int run_repair_sweep(bool smoke) {
  dlfs::print_banner("Repair budget sweep: demand reads vs re-replication");
  const std::size_t samples = smoke ? 2048 : 4096;
  const std::vector<std::uint64_t> budgets =
      smoke ? std::vector<std::uint64_t>{0, 16ull * 1024 * 1024}
            : std::vector<std::uint64_t>{0, 64ull * 1024 * 1024,
                                         16ull * 1024 * 1024};
  dlfs::bench::JsonReport report("chaos_repair_sweep");
  dlfs::Table table({"budget", "epoch_ms", "served", "skipped", "drain_ms",
                     "repair_MiBps", "throttles"});
  bool ok = true;
  for (const std::uint64_t budget : budgets) {
    dlfs::core::DlfsConfig cfg;
    cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
    cfg.fault.replication = dlfs::core::ReplicationConfig(2);
    cfg.fault.replication.repair_bytes_per_sec = budget;
    SoakRig rig(samples, cfg);
    auto& inst = rig.fleet.instance(0);
    EpochLog log;
    dlsim::SimTime t0 = 0, t_epoch = 0, t_drain = 0;
    rig.sim.spawn(
        [](SoakRig& r, dlfs::core::DlfsInstance& inst, EpochLog& log,
           dlsim::SimTime& t0, dlsim::SimTime& t_epoch,
           dlsim::SimTime& t_drain) -> Task<void> {
          t0 = r.sim.now();
          r.fleet.declare_dead(0);
          inst.sequence(1);
          co_await run_epoch_logged(r.ds, inst, log);
          t_epoch = r.sim.now();
          while (!r.fleet.repair_backlog().empty()) {
            co_await r.sim.delay(1_ms);
          }
          t_drain = r.sim.now();
        }(rig, inst, log, t0, t_epoch, t_drain),
        "sweep-epoch");
    rig.sim.run_watchdog(rig.sim.now() + 300_sec);
    rig.sim.rethrow_failures();
    const auto st = inst.stats();
    const double drain_s = dlsim::to_seconds(t_drain - t0);
    const double rate =
        drain_s > 0 ? static_cast<double>(st.repair_bytes) / drain_s : 0.0;
    // 25% slack: the first repair of a drain window is admitted unpaced.
    if (budget != 0 && rate > static_cast<double>(budget) * 1.25) ok = false;
    if (log.skipped != 0 || !log.content_ok || log.order.size() != samples) {
      ok = false;
    }
    dlfs::bench::RunResult r;
    r.elapsed = t_epoch - t0;
    r.samples = log.order.size();
    r.samples_per_sec =
        static_cast<double>(r.samples) / dlsim::to_seconds(r.elapsed);
    r.bytes_per_sec = r.samples_per_sec * 4096.0;
    r.samples_skipped = log.skipped;
    r.nodes_declared_dead = st.nodes_declared_dead;
    r.samples_rereplicated = st.samples_rereplicated;
    r.repair_bytes = st.repair_bytes;
    r.repair_throttles = st.repair_throttles;
    report.add(budget == 0 ? "budget=unthrottled"
                           : "budget=" + std::to_string(budget / 1_MiB) +
                                 "MiBps",
               r);
    table.add_row(
        {budget == 0 ? "none" : dlfs::Table::integer(budget / 1_MiB) + "MiB/s",
         dlfs::Table::num(dlsim::to_micros(t_epoch - t0) / 1e3, 2),
         dlfs::Table::integer(log.order.size()),
         dlfs::Table::integer(log.skipped),
         dlfs::Table::num(dlsim::to_micros(t_drain - t0) / 1e3, 2),
         dlfs::Table::num(rate / (1024.0 * 1024.0), 1),
         dlfs::Table::integer(st.repair_throttles)});
  }
  table.print();
  std::printf("wrote %s\n", report.write().c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: repair exceeded its budget or demand reads degraded\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SoakParams p;
  bool repair_sweep = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      p.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      p.epochs = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--repair-sweep") == 0) {
      repair_sweep = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--epochs N] [--smoke] "
                   "[--repair-sweep]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) p.epochs = std::min(p.epochs, 3u);
  if (repair_sweep) return run_repair_sweep(smoke);
  return run_soak(p);
}

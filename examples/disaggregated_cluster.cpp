// Disaggregated cluster walkthrough: 8 compute nodes train against a
// pool of 8 NVMe-oF targets (every node is both client and target, the
// paper's symmetric burst-buffer deployment). Demonstrates the collective
// mount, the shared global sample sequence, per-node shares, and the
// per-device / per-NIC accounting the simulator exposes.

#include <cstdio>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

using dlsim::Task;
using namespace dlfs::byte_literals;

int main() {
  constexpr std::uint32_t kNodes = 8;
  dlsim::Simulator sim;
  dlfs::cluster::NodeConfig node_cfg;
  node_cfg.synthetic_store = true;  // large dataset: content on demand
  node_cfg.device_capacity = 4_GiB;
  dlfs::cluster::Cluster cluster(sim, kNodes, node_cfg);

  // An ImageNet-like dataset: variable sample sizes, 1000 classes.
  auto dataset = dlfs::dataset::make_imagenet_like_dataset(4000, 7);
  dlfs::cluster::Pfs pfs(sim, dataset);
  std::printf("dataset: %zu samples, %s total, largest sample %s\n",
              dataset.num_samples(),
              dlfs::format_bytes(dataset.total_bytes()).c_str(),
              dlfs::format_bytes(dataset.max_sample_bytes()).c_str());

  dlfs::core::DlfsConfig config;
  config.batching = dlfs::core::BatchingMode::kChunkLevel;
  dlfs::core::DlfsFleet fleet(cluster, pfs, dataset, config);
  fleet.mount();  // the collective: every participant spawned internally
  std::printf("mount done at %.1f ms; directory: %zu samples over %u trees "
              "(chunk units %zu, edge samples %zu)\n",
              dlsim::to_millis(sim.now()), fleet.directory().num_samples(),
              fleet.directory().num_nodes(), fleet.plan().num_chunk_units(),
              fleet.plan().num_edge_units());

  // Every node installs the same epoch seed — identical global order with
  // zero communication — then reads its strided share.
  for (std::uint32_t c = 0; c < kNodes; ++c) fleet.instance(c).sequence(99);
  const auto t0 = sim.now();
  std::vector<std::size_t> per_node(kNodes, 0);
  std::set<std::uint32_t> all_ids;
  for (std::uint32_t c = 0; c < kNodes; ++c) {
    sim.spawn(
        [](dlfs::core::DlfsInstance& inst, std::size_t& count,
           std::set<std::uint32_t>& ids,
           std::uint32_t arena_bytes) -> Task<void> {
          std::vector<std::byte> arena(static_cast<std::size_t>(arena_bytes));
          for (;;) {
            auto batch = co_await inst.bread(16, arena);
            if (batch.end_of_epoch) break;
            count += batch.samples.size();
            for (const auto& s : batch.samples) ids.insert(s.sample_id);
          }
        }(fleet.instance(c), per_node[c], all_ids,
          17 * dataset.max_sample_bytes()),
        "train-" + std::to_string(c));
  }
  sim.run();
  sim.rethrow_failures();

  const double secs = dlsim::to_seconds(sim.now() - t0);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < kNodes; ++c) {
    std::printf("  node %u read %zu samples (io core util %.2f)\n", c,
                per_node[c], fleet.instance(c).io_core().utilization());
    total += per_node[c];
  }
  std::printf(
      "epoch covered %zu/%zu unique samples; aggregate %.0f samples/s, "
      "%.2f GB/s\n",
      all_ids.size(), dataset.num_samples(),
      static_cast<double>(total) / secs,
      static_cast<double>(dataset.total_bytes()) / secs / 1e9);

  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::printf(
        "  device %u served %s; NIC sent %s\n", n,
        dlfs::format_bytes(cluster.node(n).device().bytes_read()).c_str(),
        dlfs::format_bytes(cluster.fabric().bytes_sent(n)).c_str());
  }
  return 0;
}

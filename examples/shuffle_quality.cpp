// Shuffle-quality demo: the §II-B motivation for DLFS's sample-level
// directory. Packing small samples into TFRecord-style batched files
// avoids small random I/O, but a framework then shuffles inside a
// bounded buffer — and a small buffer barely shuffles. DLFS instead
// indexes samples individually and shuffles globally (chunk-granular),
// keeping quality high at any scale.

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataset/dataset.hpp"
#include "dataset/record_file.hpp"
#include "dnn/experiment.hpp"
#include "sim/simulator.hpp"
#include "tfio/pipeline.hpp"

using dlsim::Task;

namespace {

/// A source reading sequentially out of a TFRecord-like batched file.
class RecordSource final : public dlfs::tfio::Source {
 public:
  explicit RecordSource(const std::vector<dlfs::dataset::RecordRef>& index)
      : index_(&index) {}
  dlsim::Task<std::optional<dlfs::tfio::Element>> next() override {
    if (i_ >= index_->size()) co_return std::nullopt;
    const auto& r = (*index_)[i_];
    dlfs::tfio::Element e{static_cast<std::uint32_t>(i_), 0, r.length};
    ++i_;
    co_return e;
  }

 private:
  const std::vector<dlfs::dataset::RecordRef>* index_;
  std::size_t i_ = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kSamples = 20000;

  // Pack kSamples small records into one batched file.
  dlfs::dataset::RecordFileWriter writer;
  std::vector<std::byte> payload(512);
  for (std::size_t i = 0; i < kSamples; ++i) {
    std::memcpy(payload.data(), &i, sizeof(i));
    writer.append(payload);
  }
  dlfs::dataset::RecordFileReader reader(writer.bytes());
  const auto index = *reader.scan();
  std::printf("batched file: %zu records, %zu bytes\n", index.size(),
              writer.bytes().size());

  dlfs::Table t({"ordering", "shuffle quality (1.0 = uniform)"});

  // TFRecord + shuffle buffer of various sizes.
  for (std::size_t buffer : {256ul, 2048ul, 20000ul}) {
    dlsim::Simulator sim;
    dlsim::CpuCore core(sim, "reader");
    dlfs::tfio::Pipeline p(core, std::make_unique<RecordSource>(index),
                           dlfs::FrameworkCosts{});
    p.shuffle(buffer, 42).batch(kSamples);
    std::vector<std::uint32_t> order;
    sim.spawn([](dlfs::tfio::Pipeline& p,
                 std::vector<std::uint32_t>& out) -> Task<void> {
      auto b = co_await p.next_batch();
      for (const auto& e : b->elements) out.push_back(e.sample_id);
    }(p, order));
    sim.run();
    sim.rethrow_failures();
    t.add_row({"TFRecord, shuffle buffer " + std::to_string(buffer),
               dlfs::Table::num(dlfs::tfio::shuffle_quality(order), 3)});
  }

  // DLFS chunk-granular global shuffle (512 samples per 256 KiB chunk).
  const auto dlfs_order = dlfs::dnn::epoch_order(
      dlfs::dnn::OrderPolicy::kDlfsChunked, kSamples, 42, 512);
  t.add_row({"DLFS chunk-level batching",
             dlfs::Table::num(dlfs::tfio::shuffle_quality(dlfs_order), 3)});

  // Application-level full shuffle.
  const auto full_order = dlfs::dnn::epoch_order(
      dlfs::dnn::OrderPolicy::kFullRandom, kSamples, 42, 512);
  t.add_row({"full randomization",
             dlfs::Table::num(dlfs::tfio::shuffle_quality(full_order), 3)});

  t.print();
  std::printf(
      "small shuffle buffers barely move samples from their file order;\n"
      "DLFS's global chunk shuffle stays close to a uniform permutation.\n");
  return 0;
}

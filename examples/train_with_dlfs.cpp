// End-to-end training example: an MLP trained with mini-batches whose
// sample *order* comes from a real mounted DLFS instance (dlfs_bread
// over a chunk-batched epoch), compared against full random order —
// the Fig. 13 experiment driven through the actual storage stack.

#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "dnn/experiment.hpp"
#include "dnn/mlp.hpp"
#include "sim/simulator.hpp"

using dlsim::Task;
using namespace dlfs::byte_literals;

namespace {

/// Reads one full epoch through dlfs_bread and returns the delivered
/// sample-id order.
std::vector<std::uint32_t> epoch_order_from_dlfs(
    dlfs::core::DlfsFleet& fleet, dlsim::Simulator& sim, std::uint64_t seed) {
  auto& inst = fleet.instance(0);
  inst.sequence(seed);
  std::vector<std::uint32_t> order;
  sim.spawn(
      [](dlfs::core::DlfsInstance& inst,
         std::vector<std::uint32_t>& order) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        for (;;) {
          auto batch = co_await inst.bread(32, arena);
          if (batch.end_of_epoch) break;
          for (const auto& s : batch.samples) order.push_back(s.sample_id);
        }
      }(inst, order),
      "epoch-order");
  sim.run();
  sim.rethrow_failures();
  return order;
}

}  // namespace

int main() {
  // The learning task (synthetic 10-class Gaussian clusters).
  dlfs::dnn::SyntheticTaskConfig tcfg;
  tcfg.train_samples = 4096;
  tcfg.test_samples = 1024;
  dlfs::dnn::SyntheticTask task(tcfg);

  // Mount a DLFS holding one 512 B "file" per training sample.
  dlsim::Simulator sim;
  dlfs::cluster::NodeConfig node_cfg;
  node_cfg.device_capacity = 1_GiB;
  dlfs::cluster::Cluster cluster(sim, 1, node_cfg);
  auto dataset =
      dlfs::dataset::make_fixed_size_dataset(tcfg.train_samples, 512);
  dlfs::cluster::Pfs pfs(sim, dataset);
  dlfs::core::DlfsConfig config;
  config.batching = dlfs::core::BatchingMode::kChunkLevel;
  dlfs::core::DlfsFleet fleet(cluster, pfs, dataset, config);
  fleet.mount();

  // Train two identical models: one visiting samples in dlfs_bread order,
  // one with per-epoch full shuffles.
  constexpr std::size_t kEpochs = 25;
  dlfs::dnn::Mlp model_dlfs({tcfg.feature_dim, 64, tcfg.num_classes}, 3);
  dlfs::dnn::Mlp model_rand({tcfg.feature_dim, 64, tcfg.num_classes}, 3);
  dlfs::Rng shuffle_rng(555);

  auto train_epoch = [&](dlfs::dnn::Mlp& model,
                         const std::vector<std::uint32_t>& order) {
    for (std::size_t start = 0; start < order.size(); start += 32) {
      const std::size_t b = std::min<std::size_t>(32, order.size() - start);
      dlfs::dnn::Matrix x(b, tcfg.feature_dim);
      std::vector<std::uint32_t> y(b);
      for (std::size_t i = 0; i < b; ++i) {
        const auto id = order[start + i];
        const float* src = task.train_x().row(id);
        std::copy(src, src + tcfg.feature_dim, x.row(i));
        y[i] = task.train_y()[id];
      }
      (void)model.train_step(x, y, 0.05f);
    }
  };

  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    // DLFS arm: the order actually delivered by the storage stack.
    const auto dlfs_order =
        epoch_order_from_dlfs(fleet, sim, /*seed=*/1000 + epoch);
    train_epoch(model_dlfs, dlfs_order);
    // Full_Rand arm.
    std::vector<std::uint32_t> rand_order(tcfg.train_samples);
    for (std::uint32_t i = 0; i < tcfg.train_samples; ++i) rand_order[i] = i;
    shuffle_rng.shuffle(rand_order);
    train_epoch(model_rand, rand_order);

    if ((epoch + 1) % 5 == 0) {
      std::printf("epoch %2zu | acc dlfs-order %.2f%% | full-rand %.2f%%\n",
                  epoch + 1,
                  model_dlfs.evaluate(task.test_x(), task.test_y()) * 100,
                  model_rand.evaluate(task.test_x(), task.test_y()) * 100);
    }
  }
  std::printf(
      "final: dlfs-order %.2f%% vs full-rand %.2f%% — DLFS-determined "
      "ordering does not hurt accuracy\n",
      model_dlfs.evaluate(task.test_x(), task.test_y()) * 100,
      model_rand.evaluate(task.test_x(), task.test_y()) * 100);
  return 0;
}

// Quickstart: mount DLFS on a single node, read one sample by name, then
// stream a mini-batch epoch with dlfs_sequence / dlfs_bread.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

using dlsim::Task;
using namespace dlfs::byte_literals;

int main() {
  dlfs::set_log_level(dlfs::LogLevel::kInfo);

  // One simulated node with one NVMe device; everything runs in virtual
  // time inside the discrete-event simulator.
  dlsim::Simulator sim;
  dlfs::cluster::NodeConfig node_cfg;
  node_cfg.synthetic_store = false;  // RAM-backed: every byte verifiable
  node_cfg.device_capacity = 1_GiB;
  dlfs::cluster::Cluster cluster(sim, /*num_nodes=*/1, node_cfg);

  // A small "ImageNet": 2,000 samples of 4 KiB with 10 classes, plus the
  // parallel file system it is uploaded from at mount time.
  auto dataset = dlfs::dataset::make_fixed_size_dataset(2000, 4_KiB);
  dlfs::cluster::Pfs pfs(sim, dataset);

  // dlfs_mount: a collective call — mount() runs every participant.
  dlfs::core::DlfsConfig config;
  config.batching = dlfs::core::BatchingMode::kChunkLevel;
  dlfs::core::DlfsFleet fleet(cluster, pfs, dataset, config);
  fleet.mount();
  std::printf("mounted %zu samples in %.2f ms of simulated time\n",
              fleet.directory().num_samples(),
              dlsim::to_millis(sim.now()));

  // dlfs_open + dlfs_read a single sample by name.
  auto& instance = fleet.instance(0);
  sim.spawn(
      [](dlfs::core::DlfsInstance& inst, const dlfs::dataset::Dataset& ds)
          -> Task<void> {
        auto handle = co_await inst.open("fixed4096_42");
        std::vector<std::byte> buf(handle.entry->len());
        co_await inst.read(handle, buf);
        // Verify against the dataset's content function.
        std::vector<std::byte> want(buf.size());
        ds.fill_content(handle.sample_id, 0, want);
        std::printf("read sample 42: %zu bytes, content %s\n", buf.size(),
                    buf == want ? "verified" : "MISMATCH");
      }(instance, dataset),
      "single-read");
  sim.run();
  sim.rethrow_failures();

  // dlfs_sequence + dlfs_bread: one epoch of mini-batches.
  instance.sequence(/*seed=*/2024);
  sim.spawn(
      [](dlsim::Simulator& s, dlfs::core::DlfsInstance& inst) -> Task<void> {
        std::vector<std::byte> arena(64 * 4_KiB);
        const auto t0 = s.now();
        std::size_t batches = 0, samples = 0;
        for (;;) {
          auto batch = co_await inst.bread(32, arena);
          if (batch.end_of_epoch) break;
          ++batches;
          samples += batch.samples.size();
        }
        const double secs = dlsim::to_seconds(s.now() - t0);
        std::printf(
            "epoch: %zu samples in %zu mini-batches, %.0f samples/s "
            "(simulated), cache hits %llu\n",
            samples, batches, static_cast<double>(samples) / secs,
            static_cast<unsigned long long>(inst.cache().hits()));
      }(sim, instance),
      "epoch");
  sim.run();
  sim.rethrow_failures();
  return 0;
}

// corolint — coroutine-lifetime lint for the dlfs tree.
//
// A lightweight AST-less scanner (comment/literal stripping + bracket
// matching; no libclang dependency) for the coroutine hazards this
// repository has actually been bitten by:
//
//   CL001  Task<> coroutine taking reference / string_view / span
//          parameters. The coroutine frame stores the *reference*; if the
//          caller's argument dies before the coroutine finishes (detached
//          coroutines, or frames outliving a full-expression), the frame
//          dangles. GCC 12 additionally miscompiles some such frames
//          outright (see spdk/nvmf.cpp probe()). Vetted sites — callers
//          that demonstrably co_await the task to completion within the
//          referents' lifetimes — belong in the allowlist.
//
//   CL002  Lambda coroutine capturing by reference. The lambda object is
//          destroyed once the full-expression ends, but the coroutine
//          frame keeps using its captures — by-reference captures then
//          dangle on the first resume.
//
//   CL003  Detached coroutine (spawn / spawn_daemon) built from a lambda
//          capturing `this` (or defaulting to it via [&] / [=]). The
//          daemon outlives scopes; unless the object's destructor
//          provably outlives the simulator drain, `this` dangles.
//
//   CL004  `if (!co_await ...)` / `while (!co_await ...)`: the negated
//          await-in-condition shape GCC 12 miscompiles (frame clobber).
//          Hoist the await into a named local first.
//
// Modes:
//   corolint [--allowlist FILE] PATH...       scan; exit 1 on findings
//   corolint --self-test FIXTURE_PATH...      verify the fixture corpus:
//          every `// CORO-LINT-EXPECT: CLxxx` marker must be matched by a
//          finding of that rule on the marked line, and no unexpected
//          findings may appear. Exit 1 on any mismatch.
//
// Allowlist lines: `CLxxx <path-suffix> <name>` where <name> is the
// flagged function's name, `<lambda>` for lambda findings, or `*` for
// every finding of that rule in the file. `#` starts a comment.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string rule;
  std::string file;  // as passed / discovered
  int line = 0;
  std::string name;  // function name or "<lambda>"
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string file_suffix;
  std::string name;  // "*" = any
};

// --- source preprocessing ---------------------------------------------------

// Replaces comments and string/char literals with spaces, preserving
// every byte position and newline so offsets map 1:1 to the original.
std::string strip_comments_and_literals(const std::string& src) {
  std::string out(src.size(), ' ');
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto copy_nl = [&](std::size_t at) {
    if (src[at] == '\n') out[at] = '\n';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;  // newline handled next iteration
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        copy_nl(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, p);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      for (std::size_t k = i; k < stop; ++k) copy_nl(k);
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      out[i] = q;  // keep the quote itself so tokens don't merge
      ++i;
      while (i < n && src[i] != q) {
        if (src[i] == '\\') {
          copy_nl(i);
          ++i;
          if (i < n) copy_nl(i);
          ++i;
          continue;
        }
        copy_nl(i);
        ++i;
      }
      if (i < n) {
        out[i] = q;
        ++i;
      }
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

struct SourceFile {
  std::string path;
  std::string orig;
  std::string code;  // stripped
  std::vector<std::size_t> line_starts;

  void index_lines() {
    line_starts.clear();
    line_starts.push_back(0);
    for (std::size_t i = 0; i < orig.size(); ++i) {
      if (orig[i] == '\n') line_starts.push_back(i + 1);
    }
  }

  [[nodiscard]] int line_of(std::size_t off) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<int>(it - line_starts.begin());
  }
};

// --- small token helpers ----------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

std::size_t skip_ws_back(const std::string& s, std::size_t i) {
  // Returns the index of the last non-ws char at or before i, or npos.
  while (i != std::string::npos &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

// Matches a bracket pair forward; s[open] must be the opening char.
// Returns index of the matching closer, or npos.
std::size_t match_forward(const std::string& s, std::size_t open, char o,
                          char c) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == o) ++depth;
    if (s[i] == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

// Matches a bracket pair backward; s[close] must be the closing char.
std::size_t match_backward(const std::string& s, std::size_t close, char o,
                           char c) {
  int depth = 0;
  for (std::size_t i = close;; --i) {
    if (s[i] == c) ++depth;
    if (s[i] == o) {
      --depth;
      if (depth == 0) return i;
    }
    if (i == 0) break;
  }
  return std::string::npos;
}

bool contains_word(const std::string& s, const std::string& w) {
  std::size_t p = 0;
  while ((p = s.find(w, p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const std::size_t after = p + w.size();
    const bool right_ok = after >= s.size() || !ident_char(s[after]);
    if (left_ok && right_ok) return true;
    p += 1;
  }
  return false;
}

bool has_coroutine_keyword(const std::string& body) {
  return contains_word(body, "co_await") || contains_word(body, "co_return") ||
         contains_word(body, "co_yield");
}

// What makes a parameter list hazardous for a coroutine.
std::string param_hazard(const std::string& params) {
  if (params.find('&') != std::string::npos) return "reference parameter";
  if (params.find("string_view") != std::string::npos) {
    return "string_view parameter";
  }
  std::size_t p = 0;
  while ((p = params.find("span", p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(params[p - 1]);
    const std::size_t after = skip_ws(params, p + 4);
    if (left_ok && after < params.size() && params[after] == '<') {
      return "span parameter";
    }
    ++p;
  }
  return {};
}

std::vector<std::string> split_captures(const std::string& caps) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : caps) {
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  out.push_back(cur);
  for (auto& t : out) {
    const std::size_t b = t.find_first_not_of(" \t\n");
    const std::size_t e = t.find_last_not_of(" \t\n");
    t = b == std::string::npos ? std::string{} : t.substr(b, e - b + 1);
  }
  return out;
}

// --- rule scanners ----------------------------------------------------------

// Finds `Task <...>` occurrences; returns offset past the closing '>' or
// npos. `pos` points at the 'T' of a candidate "Task".
std::size_t task_template_end(const std::string& code, std::size_t pos) {
  if (pos > 0 && (ident_char(code[pos - 1]))) return std::string::npos;
  std::size_t p = skip_ws(code, pos + 4);
  if (p >= code.size() || code[p] != '<') return std::string::npos;
  int depth = 0;
  for (; p < code.size(); ++p) {
    if (code[p] == '<') ++depth;
    if (code[p] == '>') {
      --depth;
      if (depth == 0) return p + 1;
    }
  }
  return std::string::npos;
}

// CL001 for named functions/methods: `Task<...> name(args) ... {body}`.
void scan_named_coroutines(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("Task", pos)) != std::string::npos) {
    const std::size_t after_tmpl = task_template_end(code, pos);
    if (after_tmpl == std::string::npos) {
      pos += 4;
      continue;
    }
    std::size_t p = skip_ws(code, after_tmpl);
    // Possibly-qualified identifier.
    std::size_t name_begin = p;
    while (p < code.size() && (ident_char(code[p]) || code[p] == ':')) ++p;
    if (p == name_begin) {
      pos = after_tmpl;
      continue;
    }
    std::string name = code.substr(name_begin, p - name_begin);
    p = skip_ws(code, p);
    if (p >= code.size() || code[p] != '(') {
      pos = after_tmpl;
      continue;
    }
    const std::size_t close = match_forward(code, p, '(', ')');
    if (close == std::string::npos) {
      pos = after_tmpl;
      continue;
    }
    const std::string params = code.substr(p + 1, close - p - 1);
    // Find the body start (or ';' for a declaration) at depth 0.
    std::size_t q = close + 1;
    std::size_t body_open = std::string::npos;
    while (q < code.size()) {
      const char c = code[q];
      if (c == ';') break;
      if (c == '{') {
        body_open = q;
        break;
      }
      if (c == '(') {  // e.g. noexcept(...)
        q = match_forward(code, q, '(', ')');
        if (q == std::string::npos) break;
      }
      ++q;
    }
    if (body_open == std::string::npos) {
      pos = close;
      continue;  // declaration only; the definition is scanned elsewhere
    }
    const std::size_t body_close = match_forward(code, body_open, '{', '}');
    if (body_close == std::string::npos) {
      pos = close;
      continue;
    }
    const std::string body =
        code.substr(body_open + 1, body_close - body_open - 1);
    if (has_coroutine_keyword(body)) {
      const std::string hazard = param_hazard(params);
      if (!hazard.empty()) {
        // Unqualify the name for reporting/allowlisting.
        const std::size_t colon = name.rfind("::");
        if (colon != std::string::npos) name = name.substr(colon + 2);
        out.push_back({"CL001", f.path, f.line_of(name_begin), name,
                       "coroutine '" + name + "' takes a " + hazard +
                           "; the frame outlives the full-expression and the "
                           "referent may dangle (hoist to a by-value param)"});
      }
    }
    pos = close;
  }
}

// CL001/CL002 for lambda coroutines: `[caps](params) ... -> Task<...>`.
void scan_lambda_coroutines(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("->", pos)) != std::string::npos) {
    const std::size_t arrow = pos;
    pos += 2;
    std::size_t p = skip_ws(code, arrow + 2);
    // Accept `Task<`, `dlsim::Task<`, `sim::Task<`, ...
    std::size_t t = p;
    while (t < code.size() && (ident_char(code[t]) || code[t] == ':')) ++t;
    const std::string ret = code.substr(p, t - p);
    const bool is_task = ret == "Task" || (ret.size() > 4 &&
                                           ret.compare(ret.size() - 4, 4,
                                                       "Task") == 0 &&
                                           ret[ret.size() - 5] == ':');
    if (!is_task) continue;
    if (task_template_end(code, t - 4) == std::string::npos) continue;
    // Backtrack over the parameter list.
    std::size_t b = skip_ws_back(code, arrow - 1);
    if (b == std::string::npos || code[b] != ')') continue;
    const std::size_t open = match_backward(code, b, '(', ')');
    if (open == std::string::npos) continue;
    const std::string params = code.substr(open + 1, b - open - 1);
    std::size_t before = skip_ws_back(code, open == 0 ? 0 : open - 1);
    if (before == std::string::npos) continue;
    if (code[before] == ']') {
      // Lambda coroutine.
      const std::size_t cap_open = match_backward(code, before, '[', ']');
      if (cap_open == std::string::npos) continue;
      const std::string caps =
          code.substr(cap_open + 1, before - cap_open - 1);
      const int line = f.line_of(cap_open);
      for (const std::string& tok : split_captures(caps)) {
        if (tok.empty()) continue;
        if (tok[0] == '&' && tok.rfind("&&", 0) != 0) {
          out.push_back({"CL002", f.path, line, "<lambda>",
                         "lambda coroutine captures '" + tok +
                             "' by reference; the lambda object dies at the "
                             "end of the full-expression and the capture "
                             "dangles on the first resume"});
          break;
        }
      }
      const std::string hazard = param_hazard(params);
      if (!hazard.empty()) {
        out.push_back({"CL001", f.path, line, "<lambda>",
                       "lambda coroutine takes a " + hazard +
                           "; the frame outlives the full-expression and the "
                           "referent may dangle (pass by value / pointer)"});
      }
    } else if (ident_char(code[before])) {
      // Named function with a trailing return type: `auto f(...) -> Task<>`.
      std::size_t nb = before;
      while (nb > 0 && (ident_char(code[nb - 1]) || code[nb - 1] == ':')) --nb;
      std::string name = code.substr(nb, before - nb + 1);
      const std::size_t colon = name.rfind("::");
      if (colon != std::string::npos) name = name.substr(colon + 2);
      const std::string hazard = param_hazard(params);
      if (hazard.empty()) continue;
      // Only flag definitions that are actually coroutines.
      std::size_t q = t;
      while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
      if (q >= code.size() || code[q] != '{') continue;
      const std::size_t body_close = match_forward(code, q, '{', '}');
      if (body_close == std::string::npos) continue;
      if (!has_coroutine_keyword(code.substr(q + 1, body_close - q - 1))) {
        continue;
      }
      out.push_back({"CL001", f.path, f.line_of(nb), name,
                     "coroutine '" + name + "' takes a " + hazard +
                         "; the frame outlives the full-expression and the "
                         "referent may dangle (hoist to a by-value param)"});
    }
  }
}

// CL003: spawn()/spawn_daemon() of a lambda capturing `this` (or
// defaulting to capture it).
void scan_detached_this(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  for (const std::string fn : {"spawn_daemon", "spawn"}) {
    std::size_t pos = 0;
    while ((pos = code.find(fn, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += fn.size();
      const bool left_ok = start == 0 || !ident_char(code[start - 1]);
      const std::size_t after = skip_ws(code, start + fn.size());
      if (!left_ok || after >= code.size() || code[after] != '(') continue;
      // `spawn` is a prefix of `spawn_daemon`; skip the daemon form here so
      // it is only reported once (the loop visits spawn_daemon first).
      if (fn == "spawn" && code.compare(start, 12, "spawn_daemon") == 0) {
        continue;
      }
      const std::size_t close = match_forward(code, after, '(', ')');
      if (close == std::string::npos) continue;
      const std::string args = code.substr(after + 1, close - after - 1);
      // Lambda intros within the call arguments.
      std::size_t lp = 0;
      while ((lp = args.find('[', lp)) != std::string::npos) {
        const std::size_t lclose = match_forward(args, lp, '[', ']');
        if (lclose == std::string::npos) break;
        const std::size_t nxt = skip_ws(args, lclose + 1);
        const bool looks_like_lambda =
            nxt < args.size() &&
            (args[nxt] == '(' || args[nxt] == '{' || args[nxt] == '<');
        if (looks_like_lambda) {
          for (const std::string& tok :
               split_captures(args.substr(lp + 1, lclose - lp - 1))) {
            if (tok == "this" || tok == "*this" || tok == "&" || tok == "=") {
              out.push_back(
                  {"CL003", f.path, f.line_of(after + 1 + lp), "<lambda>",
                   "detached coroutine (" + fn + ") captures '" + tok +
                       "'; the daemon may outlive the object — pass an "
                       "owning/liveness token instead"});
              break;
            }
          }
        }
        lp = lclose + 1;
      }
    }
  }
}

// CL004: `if (!co_await ...)` / `while (!co_await ...)`.
void scan_negated_await(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  for (const std::string kw : {"if", "while"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kw.size();
      const bool left_ok = start == 0 || !ident_char(code[start - 1]);
      if (!left_ok || start + kw.size() >= code.size() ||
          ident_char(code[start + kw.size()])) {
        continue;
      }
      std::size_t p = skip_ws(code, start + kw.size());
      if (p >= code.size() || code[p] != '(') continue;
      p = skip_ws(code, p + 1);
      if (p >= code.size() || code[p] != '!') continue;
      p = skip_ws(code, p + 1);
      if (p < code.size() && code[p] == '(') p = skip_ws(code, p + 1);
      if (p + 8 < code.size() && code.compare(p, 8, "co_await") == 0 &&
          !ident_char(code[p + 8])) {
        out.push_back({"CL004", f.path, f.line_of(start), kw,
                       "negated co_await inside a " + kw +
                           " condition — GCC 12 miscompiles this shape "
                           "(frame clobber); hoist the await into a named "
                           "local first"});
      }
    }
  }
}

// --- driver -----------------------------------------------------------------

bool load(const std::string& path, SourceFile& f) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  f.path = path;
  f.orig = ss.str();
  f.code = strip_comments_and_literals(f.orig);
  f.index_lines();
  return true;
}

std::vector<Finding> scan_file(const SourceFile& f) {
  std::vector<Finding> out;
  scan_named_coroutines(f, out);
  scan_lambda_coroutines(f, out);
  scan_detached_this(f, out);
  scan_negated_await(f, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line || (a.line == b.line && a.rule < b.rule);
  });
  return out;
}

bool source_like(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         bool skip_fixtures) {
  std::vector<std::string> files;
  for (const std::string& r : roots) {
    if (fs::is_regular_file(r)) {
      files.push_back(r);
      continue;
    }
    if (!fs::is_directory(r)) {
      std::cerr << "corolint: no such path: " << r << "\n";
      continue;
    }
    for (const auto& e : fs::recursive_directory_iterator(r)) {
      if (!e.is_regular_file() || !source_like(e.path())) continue;
      const std::string s = e.path().string();
      if (skip_fixtures && s.find("corolint/fixtures") != std::string::npos) {
        continue;
      }
      files.push_back(s);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "corolint: cannot read allowlist: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    AllowEntry e;
    if (ss >> e.rule >> e.file_suffix >> e.name) entries.push_back(e);
  }
  return entries;
}

bool allowlisted(const Finding& f, const std::vector<AllowEntry>& allow) {
  for (const AllowEntry& e : allow) {
    if (e.rule != f.rule) continue;
    if (f.file.size() < e.file_suffix.size() ||
        f.file.compare(f.file.size() - e.file_suffix.size(),
                       e.file_suffix.size(), e.file_suffix) != 0) {
      continue;
    }
    if (e.name == "*" || e.name == f.name) return true;
  }
  return false;
}

// Self-test: verify findings against `// CORO-LINT-EXPECT: CLxxx[,CLyyy]`
// markers. A marker on a line of its own applies to the next line.
int self_test(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& path : files) {
    SourceFile f;
    if (!load(path, f)) {
      std::cerr << "corolint: cannot read " << path << "\n";
      return 2;
    }
    const std::vector<Finding> findings = scan_file(f);
    struct Expect {
      std::string rule;
      int line;
      bool hit = false;
    };
    std::vector<Expect> expects;
    std::istringstream ss(f.orig);
    std::string line;
    int ln = 0;
    static const std::string kMarker = "CORO-LINT-EXPECT:";
    while (std::getline(ss, line)) {
      ++ln;
      const std::size_t m = line.find(kMarker);
      if (m == std::string::npos) continue;
      const std::size_t first = line.find_first_not_of(" \t");
      const bool own_line =
          first != std::string::npos && line.compare(first, 2, "//") == 0;
      std::string rules = line.substr(m + kMarker.size());
      std::istringstream rs(rules);
      std::string rule;
      while (std::getline(rs, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t\r");
        if (b == std::string::npos) continue;
        expects.push_back(
            {rule.substr(b, e - b + 1), own_line ? ln + 1 : ln, false});
      }
    }
    std::vector<bool> matched(findings.size(), false);
    for (Expect& ex : expects) {
      for (std::size_t i = 0; i < findings.size(); ++i) {
        if (!matched[i] && findings[i].rule == ex.rule &&
            findings[i].line == ex.line) {
          matched[i] = true;
          ex.hit = true;
          break;
        }
      }
      if (!ex.hit) {
        std::cerr << path << ":" << ex.line << ": MISSED expected " << ex.rule
                  << " finding\n";
        ++failures;
      }
    }
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (!matched[i]) {
        std::cerr << findings[i].file << ":" << findings[i].line
                  << ": UNEXPECTED " << findings[i].rule << " "
                  << findings[i].message << "\n";
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cout << "corolint self-test: all fixture expectations matched\n";
    return 0;
  }
  std::cerr << "corolint self-test: " << failures << " mismatch(es)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allowlist_path;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--allowlist") {
      if (++i >= argc) {
        std::cerr << "corolint: --allowlist needs a path\n";
        return 2;
      }
      allowlist_path = argv[i];
    } else if (a == "--self-test") {
      selftest = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: corolint [--allowlist FILE] PATH...\n"
                   "       corolint --self-test FIXTURE_PATH...\n";
      return 0;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "corolint: no paths given (try --help)\n";
    return 2;
  }
  const std::vector<std::string> files =
      collect_sources(roots, /*skip_fixtures=*/!selftest);
  if (selftest) return self_test(files);

  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) allow = load_allowlist(allowlist_path);
  int reported = 0;
  int suppressed = 0;
  for (const std::string& path : files) {
    SourceFile f;
    if (!load(path, f)) {
      std::cerr << "corolint: cannot read " << path << "\n";
      return 2;
    }
    for (const Finding& finding : scan_file(f)) {
      if (allowlisted(finding, allow)) {
        ++suppressed;
        continue;
      }
      std::cout << finding.file << ":" << finding.line << ": " << finding.rule
                << " [" << finding.name << "] " << finding.message << "\n";
      ++reported;
    }
  }
  std::cout << "corolint: " << files.size() << " file(s), " << reported
            << " finding(s), " << suppressed << " allowlisted\n";
  return reported == 0 ? 0 : 1;
}

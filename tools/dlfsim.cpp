// dlfsim — workload runner for the DLFS simulation.
//
// Runs a random-read training epoch over DLFS, Ext4 or OctoFS with every
// knob on the command line, printing throughput / CPU / lookup numbers.
//
//   dlfsim --system=all --nodes=8 --sample-bytes=4096
//   dlfsim --system=dlfs --nodes=16 --batching=sample --queue-depth=16
//   dlfsim --system=dlfs --clients=1 --storage=8 --sample-bytes=131072

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

namespace {

using dlfs::bench::RunResult;
using dlfs::bench::Workload;

struct Options {
  std::string system = "all";
  std::string batching = "chunk";
  Workload workload;
  dlfs::core::DlfsConfig dlfs_cfg;
  std::uint32_t ext4_threads = 1;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dlfsim [options]\n"
      "  --system=dlfs|ext4|octopus|all   (default all)\n"
      "  --nodes=N                        cluster size (default 4)\n"
      "  --clients=N                      DLFS clients (default = nodes)\n"
      "  --storage=N                      storage nodes (default = nodes)\n"
      "  --sample-bytes=B                 sample size (default 4096)\n"
      "  --samples-per-node=K             dataset shard size (default 2048)\n"
      "  --batch-size=B                   dlfs_bread batch (default 32)\n"
      "  --batching=chunk|sample|none     DLFS mode (default chunk)\n"
      "  --chunk-bytes=B                  data chunk size (default 262144)\n"
      "  --queue-depth=D                  SPDK queue depth (default 128)\n"
      "  --copy-threads=N                 SCQ copy pool (default 2)\n"
      "  --prefetch=N                     read-ahead units; 0 = disable the\n"
      "                                   async daemon (default 4)\n"
      "  --ext4-threads=N                 reader threads per node (default 1)\n"
      "  --seed=S                         workload seed (default 42)\n");
  std::exit(2);
}

std::uint64_t parse_u64(std::string_view v) {
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}

Options parse(int argc, char** argv) {
  Options o;
  o.workload.num_nodes = 4;
  o.workload.samples_per_node = 2048;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto eq = arg.find('=');
    if (!arg.starts_with("--") || eq == std::string_view::npos) usage();
    const std::string_view key = arg.substr(2, eq - 2);
    const std::string_view val = arg.substr(eq + 1);
    if (key == "system") {
      o.system = std::string(val);
    } else if (key == "nodes") {
      o.workload.num_nodes = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "clients") {
      o.workload.clients = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "storage") {
      o.workload.storage = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "sample-bytes") {
      o.workload.sample_bytes = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "samples-per-node") {
      o.workload.samples_per_node = parse_u64(val);
    } else if (key == "batch-size") {
      o.workload.batch_size = parse_u64(val);
    } else if (key == "batching") {
      o.batching = std::string(val);
    } else if (key == "chunk-bytes") {
      o.dlfs_cfg.chunk_bytes = parse_u64(val);
    } else if (key == "queue-depth") {
      o.dlfs_cfg.queue_depth = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "copy-threads") {
      o.dlfs_cfg.copy_threads = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "prefetch") {
      const auto units = static_cast<std::uint32_t>(parse_u64(val));
      o.dlfs_cfg.prefetch.enabled = units > 0;
      if (units > 0) o.dlfs_cfg.prefetch.initial_units = units;
    } else if (key == "ext4-threads") {
      o.ext4_threads = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "seed") {
      o.workload.seed = parse_u64(val);
    } else {
      usage();
    }
  }
  if (o.batching == "chunk") {
    o.dlfs_cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
  } else if (o.batching == "sample") {
    o.dlfs_cfg.batching = dlfs::core::BatchingMode::kSampleLevel;
  } else if (o.batching == "none") {
    o.dlfs_cfg.batching = dlfs::core::BatchingMode::kNone;
  } else {
    usage();
  }
  return o;
}

void report(dlfs::Table& t, const char* name, const RunResult& r) {
  t.add_row({name, dlfs::Table::num(r.samples_per_sec / 1e3, 1),
             dlfs::format_rate(r.bytes_per_sec),
             dlfs::Table::num(r.client_cpu_util, 2),
             dlfs::Table::num(r.lookup_us_avg, 2),
             dlfs::Table::num(dlsim::to_millis(r.elapsed), 1) + " ms",
             dlfs::Table::integer(r.samples)});
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  std::printf(
      "dlfsim: nodes=%u sample=%s samples/node=%zu batch=%zu batching=%s\n",
      o.workload.num_nodes,
      dlfs::format_bytes(o.workload.sample_bytes).c_str(),
      o.workload.samples_per_node, o.workload.batch_size,
      o.batching.c_str());

  dlfs::Table t({"system", "Ksamples/s", "bandwidth", "cpu util",
                 "lookup us", "epoch time", "samples"});
  if (o.system == "dlfs" || o.system == "all") {
    report(t, "DLFS", dlfs::bench::run_dlfs(o.workload, o.dlfs_cfg));
  }
  if (o.system == "ext4" || o.system == "all") {
    report(t, "Ext4", dlfs::bench::run_ext4(o.workload, o.ext4_threads));
  }
  if (o.system == "octopus" || o.system == "all") {
    report(t, "OctoFS", dlfs::bench::run_octopus(o.workload));
  }
  t.print();
  return 0;
}

// dlfslint — multi-pass static-analysis suite for the dlfs tree
// (grown from the original corolint coroutine-lifetime lint).
//
// A lightweight AST-less scanner (comment/literal stripping + bracket
// matching; no libclang dependency) for the concurrency hazards this
// repository has actually been bitten by:
//
//   CL001  Task<> coroutine taking reference / string_view / span
//          parameters. The coroutine frame stores the *reference*; if the
//          caller's argument dies before the coroutine finishes (detached
//          coroutines, or frames outliving a full-expression), the frame
//          dangles. GCC 12 additionally miscompiles some such frames
//          outright (see spdk/nvmf.cpp probe()). Vetted sites — callers
//          that demonstrably co_await the task to completion within the
//          referents' lifetimes — belong in the allowlist.
//
//   CL002  Lambda coroutine capturing by reference. The lambda object is
//          destroyed once the full-expression ends, but the coroutine
//          frame keeps using its captures — by-reference captures then
//          dangle on the first resume.
//
//   CL003  Detached coroutine (spawn / spawn_daemon) built from a lambda
//          capturing `this` (or defaulting to it via [&] / [=]). The
//          daemon outlives scopes; unless the object's destructor
//          provably outlives the simulator drain, `this` dangles.
//
//   CL004  `if (!co_await ...)` / `while (!co_await ...)`: the negated
//          await-in-condition shape GCC 12 miscompiles (frame clobber).
//          Hoist the await into a named local first.
//
//   CL005  Lock held across a suspension point, two passes:
//          (a) an AccessSlice variable live in scope at a co_await —
//              slices assert whole-method suspension-free critical
//              sections, so any await inside one is a DataRaceError
//              waiting for the right interleaving; the static pass
//              catches it without needing a test to interleave it.
//          (b) whole-repo lock-order cycles: every `co_await
//              X.lock()/.scoped_lock()` held (guard in scope / until
//              unlock) across a nested acquisition of Y records a static
//              X->Y edge; a cycle in the cross-file edge graph is
//              reported at each participating acquisition site. Unlike
//              the dynamic LockOrderGraph this needs no interleaving to
//              fire. sim::Mutex guards held across awaits with no nested
//              acquisition (e.g. the ext4 big-kernel-lock) are
//              deliberately NOT flagged — that is this codebase's
//              sanctioned pattern.
//
//   CL006  View/span escape: a span obtained from ViewBatch pieces /
//          bread_views stored into a member (trailing-underscore
//          convention), a static, or a member container. Views borrow
//          pinned prefetch chunks; once the lease releases them the
//          bytes are scribbled (scribble_on_free) — any stored span is a
//          use-after-free in waiting. Static complement to the dynamic
//          scribble check.
//
//   CL007  Detached daemon hygiene: every spawn_daemon call must pass an
//          explicit name (the watchdog names blocked coroutines — an
//          unnamed daemon is undiagnosable), and a daemon's infinite
//          loop (`for(;;)` / `while(true)`) whose only awaits are
//          delay() timers busy-spins the simulator instead of parking on
//          an Event / Channel / Semaphore; a parked daemon costs nothing
//          and lets an idle sim quiesce.
//
// Modes:
//   dlfslint [--allowlist FILE] PATH...       scan; exit 1 on findings
//          or stale allowlist entries (an entry matching no finding).
//   dlfslint --self-test FIXTURE_PATH...      verify the fixture corpus:
//          every `// DLFSLINT-EXPECT: CLxxx` marker must be matched by a
//          finding of that rule on the marked line, and no unexpected
//          findings may appear. Exit 1 on any mismatch.
//
// Suppressions:
//   - Allowlist lines: `CLxxx <path-suffix> <name>` where <name> is the
//     flagged function/variable name, `<lambda>` for lambda findings, or
//     `*` for every finding of that rule in the file. `#` starts a
//     comment. Entries that no longer match any finding are themselves
//     errors (stale-allowlist gate) so suppressions cannot outlive the
//     code they excused.
//   - Inline: a `// DLFSLINT-ALLOW: CLxxx[,CLyyy]` comment suppresses
//     those rules on its own line (or, when the comment is a line of its
//     own, on the next line). For deliberate violations that live next
//     to the code they annotate — e.g. tests that prove the dynamic
//     checkers fire.

#include <iostream>
#include <map>
#include <set>

#include "scan_common.hpp"

// Directory components the tree scan skips (the deliberately-bad corpus).
#if __has_include(<filesystem>)
#include <filesystem>
#endif

namespace {

namespace fs = std::filesystem;
using lintcommon::SourceFile;
using lintcommon::contains_word;
using lintcommon::enclosing_block_end;
using lintcommon::find_word;
using lintcommon::ident_char;
using lintcommon::match_backward;
using lintcommon::match_forward;
using lintcommon::skip_ws;
using lintcommon::skip_ws_back;

struct Finding {
  std::string rule;
  std::string file;  // as passed / discovered
  int line = 0;
  std::string name;  // function name or "<lambda>"
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string file_suffix;
  std::string name;  // "*" = any
};

// A statically-recorded lock-order edge: `from` was held while `to` was
// acquired, at file:line. Collected across every scanned file, then fed
// to the cycle pass.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

bool has_coroutine_keyword(const std::string& body) {
  return contains_word(body, "co_await") || contains_word(body, "co_return") ||
         contains_word(body, "co_yield");
}

// What makes a parameter list hazardous for a coroutine.
std::string param_hazard(const std::string& params) {
  if (params.find('&') != std::string::npos) return "reference parameter";
  if (params.find("string_view") != std::string::npos) {
    return "string_view parameter";
  }
  std::size_t p = 0;
  while ((p = params.find("span", p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(params[p - 1]);
    const std::size_t after = skip_ws(params, p + 4);
    if (left_ok && after < params.size() && params[after] == '<') {
      return "span parameter";
    }
    ++p;
  }
  return {};
}

std::vector<std::string> split_captures(const std::string& caps) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : caps) {
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  out.push_back(cur);
  for (auto& t : out) {
    const std::size_t b = t.find_first_not_of(" \t\n");
    const std::size_t e = t.find_last_not_of(" \t\n");
    t = b == std::string::npos ? std::string{} : t.substr(b, e - b + 1);
  }
  return out;
}

// Splits a call argument list at top-level commas (()[]{} only — '<'
// would misfire on comparisons).
std::vector<std::pair<std::size_t, std::string>> split_args(
    const std::string& args) {
  std::vector<std::pair<std::size_t, std::string>> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    const char c = i < args.size() ? args[i] : ',';
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(begin, args.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  // Trim; drop a lone empty tail (e.g. `f()`).
  for (auto& [off, t] : out) {
    const std::size_t b = t.find_first_not_of(" \t\n");
    const std::size_t e = t.find_last_not_of(" \t\n");
    if (b == std::string::npos) {
      t.clear();
    } else {
      off += b;
      t = t.substr(b, e - b + 1);
    }
  }
  while (!out.empty() && out.back().second.empty()) out.pop_back();
  return out;
}

// The identifier ending at (and including) position `end` in `s`;
// empty if s[end] is not an identifier char.
std::string ident_ending_at(const std::string& s, std::size_t end) {
  if (end >= s.size() || !ident_char(s[end])) return {};
  std::size_t b = end;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, end - b + 1);
}

// Forward to the ';' that ends the statement containing `from`,
// skipping nested brackets. npos if the file ends first.
std::size_t statement_end(const std::string& code, std::size_t from) {
  int depth = 0;
  for (std::size_t i = from; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') --depth;
    if (c == ';' && depth <= 0) return i;
  }
  return std::string::npos;
}

// Back to just past the ';', '{' or '}' that precedes the statement
// containing `at`.
std::size_t statement_begin(const std::string& code, std::size_t at) {
  for (std::size_t i = at; i > 0; --i) {
    const char c = code[i - 1];
    if (c == ';' || c == '{' || c == '}') return i;
  }
  return 0;
}

// --- rule scanners ----------------------------------------------------------

// Finds `Task <...>` occurrences; returns offset past the closing '>' or
// npos. `pos` points at the 'T' of a candidate "Task".
std::size_t task_template_end(const std::string& code, std::size_t pos) {
  if (pos > 0 && (ident_char(code[pos - 1]))) return std::string::npos;
  std::size_t p = skip_ws(code, pos + 4);
  if (p >= code.size() || code[p] != '<') return std::string::npos;
  int depth = 0;
  for (; p < code.size(); ++p) {
    if (code[p] == '<') ++depth;
    if (code[p] == '>') {
      --depth;
      if (depth == 0) return p + 1;
    }
  }
  return std::string::npos;
}

// CL001 for named functions/methods: `Task<...> name(args) ... {body}`.
void scan_named_coroutines(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("Task", pos)) != std::string::npos) {
    const std::size_t after_tmpl = task_template_end(code, pos);
    if (after_tmpl == std::string::npos) {
      pos += 4;
      continue;
    }
    std::size_t p = skip_ws(code, after_tmpl);
    // Possibly-qualified identifier.
    std::size_t name_begin = p;
    while (p < code.size() && (ident_char(code[p]) || code[p] == ':')) ++p;
    if (p == name_begin) {
      pos = after_tmpl;
      continue;
    }
    std::string name = code.substr(name_begin, p - name_begin);
    p = skip_ws(code, p);
    if (p >= code.size() || code[p] != '(') {
      pos = after_tmpl;
      continue;
    }
    const std::size_t close = match_forward(code, p, '(', ')');
    if (close == std::string::npos) {
      pos = after_tmpl;
      continue;
    }
    const std::string params = code.substr(p + 1, close - p - 1);
    // Find the body start (or ';' for a declaration) at depth 0.
    std::size_t q = close + 1;
    std::size_t body_open = std::string::npos;
    while (q < code.size()) {
      const char c = code[q];
      if (c == ';') break;
      if (c == '{') {
        body_open = q;
        break;
      }
      if (c == '(') {  // e.g. noexcept(...)
        q = match_forward(code, q, '(', ')');
        if (q == std::string::npos) break;
      }
      ++q;
    }
    if (body_open == std::string::npos) {
      pos = close;
      continue;  // declaration only; the definition is scanned elsewhere
    }
    const std::size_t body_close = match_forward(code, body_open, '{', '}');
    if (body_close == std::string::npos) {
      pos = close;
      continue;
    }
    const std::string body =
        code.substr(body_open + 1, body_close - body_open - 1);
    if (has_coroutine_keyword(body)) {
      const std::string hazard = param_hazard(params);
      if (!hazard.empty()) {
        // Unqualify the name for reporting/allowlisting.
        const std::size_t colon = name.rfind("::");
        if (colon != std::string::npos) name = name.substr(colon + 2);
        out.push_back({"CL001", f.path, f.line_of(name_begin), name,
                       "coroutine '" + name + "' takes a " + hazard +
                           "; the frame outlives the full-expression and the "
                           "referent may dangle (hoist to a by-value param)"});
      }
    }
    pos = close;
  }
}

// CL001/CL002 for lambda coroutines: `[caps](params) ... -> Task<...>`.
void scan_lambda_coroutines(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("->", pos)) != std::string::npos) {
    const std::size_t arrow = pos;
    pos += 2;
    std::size_t p = skip_ws(code, arrow + 2);
    // Accept `Task<`, `dlsim::Task<`, `sim::Task<`, ...
    std::size_t t = p;
    while (t < code.size() && (ident_char(code[t]) || code[t] == ':')) ++t;
    const std::string ret = code.substr(p, t - p);
    const bool is_task = ret == "Task" || (ret.size() > 4 &&
                                           ret.compare(ret.size() - 4, 4,
                                                       "Task") == 0 &&
                                           ret[ret.size() - 5] == ':');
    if (!is_task) continue;
    if (task_template_end(code, t - 4) == std::string::npos) continue;
    // Backtrack over the parameter list.
    std::size_t b = skip_ws_back(code, arrow - 1);
    if (b == std::string::npos || code[b] != ')') continue;
    const std::size_t open = match_backward(code, b, '(', ')');
    if (open == std::string::npos) continue;
    const std::string params = code.substr(open + 1, b - open - 1);
    std::size_t before = skip_ws_back(code, open == 0 ? 0 : open - 1);
    if (before == std::string::npos) continue;
    if (code[before] == ']') {
      // Lambda coroutine.
      const std::size_t cap_open = match_backward(code, before, '[', ']');
      if (cap_open == std::string::npos) continue;
      const std::string caps =
          code.substr(cap_open + 1, before - cap_open - 1);
      const int line = f.line_of(cap_open);
      for (const std::string& tok : split_captures(caps)) {
        if (tok.empty()) continue;
        if (tok[0] == '&' && tok.rfind("&&", 0) != 0) {
          out.push_back({"CL002", f.path, line, "<lambda>",
                         "lambda coroutine captures '" + tok +
                             "' by reference; the lambda object dies at the "
                             "end of the full-expression and the capture "
                             "dangles on the first resume"});
          break;
        }
      }
      const std::string hazard = param_hazard(params);
      if (!hazard.empty()) {
        out.push_back({"CL001", f.path, line, "<lambda>",
                       "lambda coroutine takes a " + hazard +
                           "; the frame outlives the full-expression and the "
                           "referent may dangle (pass by value / pointer)"});
      }
    } else if (ident_char(code[before])) {
      // Named function with a trailing return type: `auto f(...) -> Task<>`.
      std::size_t nb = before;
      while (nb > 0 && (ident_char(code[nb - 1]) || code[nb - 1] == ':')) --nb;
      std::string name = code.substr(nb, before - nb + 1);
      const std::size_t colon = name.rfind("::");
      if (colon != std::string::npos) name = name.substr(colon + 2);
      const std::string hazard = param_hazard(params);
      if (hazard.empty()) continue;
      // Only flag definitions that are actually coroutines.
      std::size_t q = t;
      while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
      if (q >= code.size() || code[q] != '{') continue;
      const std::size_t body_close = match_forward(code, q, '{', '}');
      if (body_close == std::string::npos) continue;
      if (!has_coroutine_keyword(code.substr(q + 1, body_close - q - 1))) {
        continue;
      }
      out.push_back({"CL001", f.path, f.line_of(nb), name,
                     "coroutine '" + name + "' takes a " + hazard +
                         "; the frame outlives the full-expression and the "
                         "referent may dangle (hoist to a by-value param)"});
    }
  }
}

// CL003: spawn()/spawn_daemon() of a lambda capturing `this` (or
// defaulting to capture it).
void scan_detached_this(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  for (const std::string fn : {"spawn_daemon", "spawn"}) {
    std::size_t pos = 0;
    while ((pos = code.find(fn, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += fn.size();
      const bool left_ok = start == 0 || !ident_char(code[start - 1]);
      const std::size_t after = skip_ws(code, start + fn.size());
      if (!left_ok || after >= code.size() || code[after] != '(') continue;
      // `spawn` is a prefix of `spawn_daemon`; skip the daemon form here so
      // it is only reported once (the loop visits spawn_daemon first).
      if (fn == "spawn" && code.compare(start, 12, "spawn_daemon") == 0) {
        continue;
      }
      const std::size_t close = match_forward(code, after, '(', ')');
      if (close == std::string::npos) continue;
      const std::string args = code.substr(after + 1, close - after - 1);
      // Lambda intros within the call arguments.
      std::size_t lp = 0;
      while ((lp = args.find('[', lp)) != std::string::npos) {
        const std::size_t lclose = match_forward(args, lp, '[', ']');
        if (lclose == std::string::npos) break;
        const std::size_t nxt = skip_ws(args, lclose + 1);
        const bool looks_like_lambda =
            nxt < args.size() &&
            (args[nxt] == '(' || args[nxt] == '{' || args[nxt] == '<');
        if (looks_like_lambda) {
          for (const std::string& tok :
               split_captures(args.substr(lp + 1, lclose - lp - 1))) {
            if (tok == "this" || tok == "*this" || tok == "&" || tok == "=") {
              out.push_back(
                  {"CL003", f.path, f.line_of(after + 1 + lp), "<lambda>",
                   "detached coroutine (" + fn + ") captures '" + tok +
                       "'; the daemon may outlive the object — pass an "
                       "owning/liveness token instead"});
              break;
            }
          }
        }
        lp = lclose + 1;
      }
    }
  }
}

// CL004: `if (!co_await ...)` / `while (!co_await ...)`.
void scan_negated_await(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  for (const std::string kw : {"if", "while"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kw.size();
      const bool left_ok = start == 0 || !ident_char(code[start - 1]);
      if (!left_ok || start + kw.size() >= code.size() ||
          ident_char(code[start + kw.size()])) {
        continue;
      }
      std::size_t p = skip_ws(code, start + kw.size());
      if (p >= code.size() || code[p] != '(') continue;
      p = skip_ws(code, p + 1);
      if (p >= code.size() || code[p] != '!') continue;
      p = skip_ws(code, p + 1);
      if (p < code.size() && code[p] == '(') p = skip_ws(code, p + 1);
      if (p + 8 < code.size() && code.compare(p, 8, "co_await") == 0 &&
          !ident_char(code[p + 8])) {
        out.push_back({"CL004", f.path, f.line_of(start), kw,
                       "negated co_await inside a " + kw +
                           " condition — GCC 12 miscompiles this shape "
                           "(frame clobber); hoist the await into a named "
                           "local first"});
      }
    }
  }
}

// CL005 pass (a): an AccessSlice variable live in scope at a co_await.
// Slices assert whole-method suspension-free critical sections
// (src/sim/check.hpp); an await while one is open is a data race waiting
// for the right interleaving.
void scan_slice_across_await(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = find_word(code, "AccessSlice", pos)) != std::string::npos) {
    const std::size_t tok = pos;
    pos += 11;
    // Only variable declarations: `AccessSlice name{...};` / `(...)`.
    // The class definition (`class AccessSlice {`), ctor definitions
    // (`AccessSlice::AccessSlice(`), and parameter uses (`AccessSlice&`)
    // all lack the `<type> <ident>` shape.
    std::size_t p = skip_ws(code, tok + 11);
    const std::size_t name_begin = p;
    while (p < code.size() && ident_char(code[p])) ++p;
    if (p == name_begin) continue;
    const std::string var = code.substr(name_begin, p - name_begin);
    p = skip_ws(code, p);
    if (p >= code.size() ||
        (code[p] != '{' && code[p] != '(' && code[p] != '=')) {
      continue;
    }
    const std::size_t semi = statement_end(code, p);
    if (semi == std::string::npos) continue;
    std::size_t scope_end = enclosing_block_end(code, semi + 1);
    if (scope_end == std::string::npos) scope_end = code.size();
    const std::size_t aw = find_word(code, "co_await", semi + 1);
    if (aw != std::string::npos && aw < scope_end) {
      out.push_back(
          {"CL005", f.path, f.line_of(aw), var,
           "co_await while AccessSlice '" + var +
               "' is open — slices assert suspension-free critical "
               "sections; close the slice (own block) before awaiting"});
    }
  }
}

// CL005 pass (b), collection half: record every lock-order edge. A lock
// acquisition is `co_await <expr>.lock()` / `.scoped_lock()`; it is held
// from the end of its statement to the end of the enclosing block (or an
// explicit `<mutex>.unlock()` for bare lock()). Any acquisition of a
// *different* mutex inside that window records an edge, keyed by the
// mutex expression's final identifier (member granularity: an inversion
// between two members is a deadlock class regardless of instances).
struct Acquisition {
  std::size_t pos = 0;        // offset of the lock word
  std::string key;            // final identifier of the mutex expression
  std::size_t held_from = 0;  // just past the acquiring statement's ';'
  std::size_t held_to = 0;    // enclosing block end (or unlock)
};

void collect_lock_edges(const SourceFile& f, std::vector<LockEdge>& edges) {
  const std::string& code = f.code;
  std::vector<Acquisition> acqs;
  for (const std::string fn : {"scoped_lock", "lock"}) {
    std::size_t pos = 0;
    while ((pos = find_word(code, fn, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += fn.size();
      const std::size_t after = skip_ws(code, start + fn.size());
      if (after >= code.size() || code[after] != '(') continue;
      // Must be a member call: preceded by '.' or '->'.
      if (start == 0) continue;
      const char prev = code[start - 1];
      std::size_t expr_end;
      if (prev == '.') {
        expr_end = start - 2;
      } else if (prev == '>' && start >= 2 && code[start - 2] == '-') {
        expr_end = start - 3;
      } else {
        continue;
      }
      const std::string key = ident_ending_at(code, expr_end);
      if (key.empty()) continue;
      // Acquisition = awaited in this statement (parking mutexes are
      // only ever acquired via co_await).
      const std::size_t stmt = statement_begin(code, start);
      if (!contains_word(code.substr(stmt, start - stmt), "co_await")) {
        continue;
      }
      const std::size_t semi = statement_end(code, start);
      if (semi == std::string::npos) continue;
      std::size_t held_to = enclosing_block_end(code, semi + 1);
      if (held_to == std::string::npos) held_to = code.size();
      if (fn == "lock") {
        // A bare lock() releases at the matching unlock() if one exists
        // before the block ends.
        std::size_t u = semi;
        while ((u = find_word(code, "unlock", u + 1)) != std::string::npos &&
               u < held_to) {
          if (ident_ending_at(code, u >= 2 && code[u - 1] == '.'
                                        ? u - 2
                                        : (u >= 3 && code[u - 1] == '>' &&
                                                   code[u - 2] == '-'
                                               ? u - 3
                                               : std::string::npos)) == key) {
            held_to = u;
            break;
          }
        }
      }
      acqs.push_back({start, key, semi + 1, held_to});
    }
  }
  for (const Acquisition& outer : acqs) {
    for (const Acquisition& inner : acqs) {
      if (inner.pos <= outer.held_from || inner.pos >= outer.held_to) continue;
      if (inner.key == outer.key) continue;  // re-entrancy is the dynamic
                                             // checker's domain
      edges.push_back(
          {outer.key, inner.key, f.path, f.line_of(inner.pos)});
    }
  }
}

// CL005 pass (b), cycle half: an edge participates in a finding when its
// head can reach its tail through the whole-repo edge graph.
void lock_cycle_findings(const std::vector<LockEdge>& edges,
                         std::map<std::string, std::vector<Finding>>& out) {
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : edges) adj[e.from].insert(e.to);
  auto reaches = [&adj](const std::string& from, const std::string& to) {
    std::set<std::string> seen;
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      const std::string n = stack.back();
      stack.pop_back();
      if (!seen.insert(n).second) continue;
      if (n == to) return true;
      const auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const std::string& m : it->second) stack.push_back(m);
    }
    return false;
  };
  for (const LockEdge& e : edges) {
    if (!reaches(e.to, e.from)) continue;
    out[e.file].push_back(
        {"CL005", e.file, e.line, e.from + "->" + e.to,
         "lock-order edge '" + e.from + "' -> '" + e.to +
             "' completes a cycle across the tree — acquire sim::Mutexes "
             "in one global order (the dynamic LockOrderGraph only fires "
             "on an interleaving a test happens to run)"});
  }
}

// CL006: a span borrowed from ViewBatch pieces / bread_views stored
// somewhere that outlives the lease. Two shapes: assignment whose LHS is
// a member (trailing '_') or marked static, and container mutation on a
// member container (`spans_.push_back(s.pieces[0])`).
void scan_view_escape(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  for (const std::string marker : {"pieces", "bread_views"}) {
    std::size_t pos = 0;
    while ((pos = find_word(code, marker, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += marker.size();
      if (marker == "pieces") {
        // Only borrows (`x.pieces` / `x->pieces`), not the field decl.
        if (at == 0) continue;
        const char prev = code[at - 1];
        if (prev != '.' && prev != '>') continue;
      }
      const std::size_t stmt = statement_begin(code, at);
      const std::size_t semi = statement_end(code, at);
      if (semi == std::string::npos) continue;
      const std::string before = code.substr(stmt, at - stmt);
      // Shape 1: assignment with the marker on the RHS.
      std::size_t eq = std::string::npos;
      {
        int depth = 0;
        for (std::size_t i = stmt; i < at; ++i) {
          const char c = code[i];
          if (c == '(' || c == '{' || c == '[') ++depth;
          if (c == ')' || c == '}' || c == ']') --depth;
          if (c != '=' || depth != 0) continue;
          const char l = i > 0 ? code[i - 1] : ' ';
          const char r = i + 1 < code.size() ? code[i + 1] : ' ';
          if (l == '=' || l == '!' || l == '<' || l == '>' || l == '+' ||
              l == '-' || l == '*' || l == '/' || l == '%' || l == '&' ||
              l == '|' || l == '^' || r == '=') {
            continue;
          }
          eq = i;
          break;
        }
      }
      if (eq != std::string::npos) {
        const std::size_t lhs_last = skip_ws_back(code, eq - 1);
        const std::string lhs = ident_ending_at(code, lhs_last);
        const std::string lhs_text = code.substr(stmt, eq - stmt);
        const bool member = !lhs.empty() && lhs.back() == '_';
        const bool is_static = contains_word(lhs_text, "static");
        if (member || is_static) {
          out.push_back(
              {"CL006", f.path, f.line_of(at), lhs.empty() ? marker : lhs,
               std::string("span/batch from ") +
                   (marker == "pieces" ? "ViewBatch pieces" : "bread_views") +
                   " stored into " + (is_static ? "static '" : "member '") +
                   lhs +
                   "' which outlives the lease — the pinned chunks are "
                   "scribbled on release; copy the bytes or keep the view "
                   "inside the lease scope"});
          continue;
        }
      }
      // Shape 2: member-container mutation with the marker as argument.
      for (const std::string mut :
           {"push_back", "emplace_back", "insert", "push"}) {
        std::size_t mp = find_word(code, mut, stmt);
        bool hit = false;
        while (mp != std::string::npos && mp < at) {
          const std::size_t paren = skip_ws(code, mp + mut.size());
          if (paren < code.size() && code[paren] == '(') {
            const std::size_t close = match_forward(code, paren, '(', ')');
            if (close != std::string::npos && at > paren && at < close &&
                mp >= 2 && code[mp - 1] == '.') {
              // Receiver chain's first component decides ownership:
              // `spans_.push_back(...)` escapes, `vs.pieces.push_back`
              // builds a local.
              std::size_t rb = statement_begin(code, mp);
              rb = skip_ws(code, rb);
              const std::size_t rs = rb;
              while (rb < code.size() && ident_char(code[rb])) ++rb;
              const std::string recv = code.substr(rs, rb - rs);
              if (!recv.empty() && recv.back() == '_') {
                out.push_back(
                    {"CL006", f.path, f.line_of(at), recv,
                     "span from " +
                         std::string(marker == "pieces" ? "ViewBatch pieces"
                                                        : "bread_views") +
                         " inserted into member container '" + recv +
                         "' which outlives the lease — the pinned chunks "
                         "are scribbled on release; copy the bytes "
                         "instead"});
                hit = true;
                break;
              }
            }
          }
          mp = find_word(code, mut, mp + 1);
        }
        if (hit) break;
      }
    }
  }
}

// CL007 helpers: find infinite loops (`for(;;)` / `while(true|1)`) in a
// body and check each for a parking await. A loop whose only awaits are
// delay() calls polls the clock instead of parking on an Event/Channel/
// Semaphore — it keeps an idle sim from quiescing and burns virtual time.
bool loop_header_is_infinite(const std::string& inner) {
  std::string t;
  for (const char c : inner) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) t += c;
  }
  return t == ";;" || t == "true" || t == "1";
}

// Returns offsets of infinite-loop bodies [open, close) within `code`
// restricted to [begin, end).
std::vector<std::pair<std::size_t, std::size_t>> infinite_loops(
    const std::string& code, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const std::string kw : {"for", "while"}) {
    std::size_t pos = begin;
    while ((pos = find_word(code, kw, pos)) != std::string::npos &&
           pos < end) {
      const std::size_t head = pos;
      pos += kw.size();
      const std::size_t paren = skip_ws(code, head + kw.size());
      if (paren >= end || code[paren] != '(') continue;
      const std::size_t close = match_forward(code, paren, '(', ')');
      if (close == std::string::npos || close >= end) continue;
      if (!loop_header_is_infinite(
              code.substr(paren + 1, close - paren - 1))) {
        continue;
      }
      std::size_t body_open = skip_ws(code, close + 1);
      std::size_t body_close;
      if (body_open < end && code[body_open] == '{') {
        body_close = match_forward(code, body_open, '{', '}');
        if (body_close == std::string::npos || body_close > end) continue;
        ++body_open;
      } else {
        // Single-statement body: `for (;;) co_await tick();`
        body_close = statement_end(code, body_open);
        if (body_close == std::string::npos || body_close > end) continue;
      }
      out.emplace_back(body_open, body_close);
    }
  }
  return out;
}

// True when every co_await in [begin, end) awaits a delay(...) call and
// there is at least one.
bool loop_only_polls_clock(const std::string& code, std::size_t begin,
                           std::size_t end) {
  std::size_t pos = begin;
  bool any = false;
  while ((pos = find_word(code, "co_await", pos)) != std::string::npos &&
         pos < end) {
    any = true;
    const std::size_t p = pos + 8;
    pos = p;
    // The awaited call: the identifier directly before the first '(' of
    // the awaited expression.
    std::size_t paren = code.find('(', p);
    if (paren == std::string::npos || paren >= end) return false;
    const std::size_t callee_end = skip_ws_back(code, paren - 1);
    if (ident_ending_at(code, callee_end) != "delay") return false;
  }
  return any;
}

void check_daemon_loops(const SourceFile& f, std::size_t body_begin,
                        std::size_t body_end, const std::string& name,
                        std::vector<Finding>& out) {
  for (const auto& [lb, le] : infinite_loops(f.code, body_begin, body_end)) {
    if (loop_only_polls_clock(f.code, lb, le)) {
      out.push_back(
          {"CL007", f.path, f.line_of(lb), name,
           "daemon '" + name +
               "' busy-polls the clock (infinite loop whose only awaits "
               "are delay()); park on an Event/Channel/Semaphore so an "
               "idle sim can quiesce, or register the loop with "
               "run_watchdog"});
    }
  }
}

// Locates the body of `Task<...> [quals::]name(` in the same file;
// returns {begin, end} or {npos, npos}.
std::pair<std::size_t, std::size_t> find_coroutine_body(
    const std::string& code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find("Task", pos)) != std::string::npos) {
    const std::size_t after_tmpl = task_template_end(code, pos);
    if (after_tmpl == std::string::npos) {
      pos += 4;
      continue;
    }
    std::size_t p = skip_ws(code, after_tmpl);
    std::size_t name_begin = p;
    while (p < code.size() && (ident_char(code[p]) || code[p] == ':')) ++p;
    std::string fn = code.substr(name_begin, p - name_begin);
    const std::size_t colon = fn.rfind("::");
    if (colon != std::string::npos) fn = fn.substr(colon + 2);
    p = skip_ws(code, p);
    if (fn != name || p >= code.size() || code[p] != '(') {
      pos = after_tmpl;
      continue;
    }
    const std::size_t close = match_forward(code, p, '(', ')');
    if (close == std::string::npos) {
      pos = after_tmpl;
      continue;
    }
    std::size_t q = skip_ws(code, close + 1);
    if (q >= code.size() || code[q] != '{') {
      pos = close;
      continue;  // declaration
    }
    const std::size_t body_close = match_forward(code, q, '{', '}');
    if (body_close == std::string::npos) {
      pos = close;
      continue;
    }
    return {q + 1, body_close};
  }
  return {std::string::npos, std::string::npos};
}

// CL007: detached daemon hygiene. Every spawn_daemon call must pass an
// explicit name, and the spawned task's infinite loops must park (see
// check_daemon_loops). Bodies are resolved best-effort within the same
// file: inline lambdas and locally-defined Task<> coroutines.
void scan_daemon_hygiene(const SourceFile& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = find_word(code, "spawn_daemon", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 12;
    const std::size_t paren = skip_ws(code, start + 12);
    if (paren >= code.size() || code[paren] != '(') continue;
    const std::size_t close = match_forward(code, paren, '(', ')');
    if (close == std::string::npos) continue;
    const std::string args = code.substr(paren + 1, close - paren - 1);
    const auto parts = split_args(args);
    if (parts.empty()) continue;  // `spawn_daemon()` — not a call we know
    // The declaration itself (`Task<void> t, std::string name = {}`)
    // also has two parts; it is skipped because its first "argument"
    // is a parameter declaration, not a task expression — detected by
    // the `Task<` prefix.
    const std::string& a0 = parts[0].second;
    if (a0.rfind("Task", 0) == 0) continue;
    if (parts.size() < 2) {
      out.push_back(
          {"CL007", f.path, f.line_of(start), "<daemon>",
           "spawn_daemon without a name — the watchdog reports blocked "
           "coroutines by name; pass one so a wedged daemon is "
           "diagnosable"});
    }
    // Resolve the task body.
    const std::size_t a0_begin = paren + 1 + parts[0].first;
    if (!a0.empty() && a0[0] == '[') {
      // Inline lambda: body is the first top-level '{' after the intro.
      const std::size_t cap_close =
          match_forward(code, a0_begin, '[', ']');
      if (cap_close == std::string::npos) continue;
      std::size_t q = cap_close + 1;
      const std::size_t a0_end = a0_begin + a0.size();
      while (q < a0_end && code[q] != '{') {
        if (code[q] == '(') {
          q = match_forward(code, q, '(', ')');
          if (q == std::string::npos) break;
        }
        ++q;
      }
      if (q == std::string::npos || q >= a0_end) continue;
      const std::size_t body_close = match_forward(code, q, '{', '}');
      if (body_close == std::string::npos) continue;
      check_daemon_loops(f, q + 1, body_close, "<lambda>", out);
      continue;
    }
    // Named call: `daemon_loop(...)`, `obj.loop(...)` — take the callee.
    const std::size_t call_paren = [&]() {
      int depth = 0;
      for (std::size_t i = a0_begin; i < a0_begin + a0.size(); ++i) {
        const char c = code[i];
        if (c == '(' && depth == 0) return i;
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
      }
      return std::string::npos;
    }();
    if (call_paren == std::string::npos) continue;
    const std::size_t callee_end = skip_ws_back(code, call_paren - 1);
    const std::string callee = ident_ending_at(code, callee_end);
    if (callee.empty() || callee == "move") continue;
    const auto [bb, be] = find_coroutine_body(code, callee);
    if (bb == std::string::npos) continue;  // defined elsewhere
    check_daemon_loops(f, bb, be, callee, out);
  }
}

// --- driver -----------------------------------------------------------------

// Inline suppressions: `// DLFSLINT-ALLOW: CLxxx[,CLyyy]` applies to its
// own line, or to the next line when the comment is a line of its own.
std::set<std::pair<std::string, int>> parse_inline_allows(
    const SourceFile& f) {
  std::set<std::pair<std::string, int>> out;
  std::istringstream ss(f.orig);
  std::string line;
  int ln = 0;
  static const std::string kMarker = "DLFSLINT-ALLOW:";
  while (std::getline(ss, line)) {
    ++ln;
    const std::size_t m = line.find(kMarker);
    if (m == std::string::npos) continue;
    const std::size_t first = line.find_first_not_of(" \t");
    const bool own_line =
        first != std::string::npos && line.compare(first, 2, "//") == 0;
    std::istringstream rs(line.substr(m + kMarker.size()));
    std::string rule;
    while (std::getline(rs, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t\r");
      if (b == std::string::npos) continue;
      out.insert({rule.substr(b, e - b + 1), own_line ? ln + 1 : ln});
    }
  }
  return out;
}

struct ScanOutput {
  // Per-file findings, keyed by path, inline suppressions already
  // applied. Includes whole-tree CL005 cycle findings.
  std::map<std::string, std::vector<Finding>> findings;
  int inline_suppressed = 0;
  bool ok = true;
};

ScanOutput scan_all(const std::vector<std::string>& files) {
  ScanOutput out;
  std::vector<LockEdge> edges;
  std::map<std::string, std::set<std::pair<std::string, int>>> allows;
  for (const std::string& path : files) {
    SourceFile f;
    if (!lintcommon::load(path, f)) {
      std::cerr << "dlfslint: cannot read " << path << "\n";
      out.ok = false;
      return out;
    }
    std::vector<Finding> fnd;
    scan_named_coroutines(f, fnd);
    scan_lambda_coroutines(f, fnd);
    scan_detached_this(f, fnd);
    scan_negated_await(f, fnd);
    scan_slice_across_await(f, fnd);
    scan_view_escape(f, fnd);
    scan_daemon_hygiene(f, fnd);
    collect_lock_edges(f, edges);
    allows[path] = parse_inline_allows(f);
    out.findings[path] = std::move(fnd);
  }
  lock_cycle_findings(edges, out.findings);
  for (auto& [path, fnd] : out.findings) {
    const auto& allow = allows[path];
    std::vector<Finding> kept;
    for (Finding& x : fnd) {
      if (allow.contains({x.rule, x.line})) {
        ++out.inline_suppressed;
        continue;
      }
      kept.push_back(std::move(x));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line || (a.line == b.line && a.rule < b.rule);
              });
    fnd = std::move(kept);
  }
  return out;
}

bool source_like(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<std::string> collect_sources(const std::vector<std::string>& roots,
                                         bool skip_fixtures) {
  std::vector<std::string> files;
  for (const std::string& r : roots) {
    if (fs::is_regular_file(r)) {
      files.push_back(r);
      continue;
    }
    if (!fs::is_directory(r)) {
      std::cerr << "dlfslint: no such path: " << r << "\n";
      continue;
    }
    for (const auto& e : fs::recursive_directory_iterator(r)) {
      if (!e.is_regular_file() || !source_like(e.path())) continue;
      const std::string s = e.path().string();
      if (skip_fixtures && s.find("dlfslint/fixtures") != std::string::npos) {
        continue;
      }
      files.push_back(s);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dlfslint: cannot read allowlist: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    AllowEntry e;
    if (ss >> e.rule >> e.file_suffix >> e.name) entries.push_back(e);
  }
  return entries;
}

// Index of the first matching allowlist entry, or npos. Every match is
// recorded in `hits` so unmatched (stale) entries can be reported.
std::size_t allowlisted(const Finding& f, const std::vector<AllowEntry>& allow,
                        std::vector<int>& hits) {
  for (std::size_t i = 0; i < allow.size(); ++i) {
    const AllowEntry& e = allow[i];
    if (e.rule != f.rule) continue;
    if (f.file.size() < e.file_suffix.size() ||
        f.file.compare(f.file.size() - e.file_suffix.size(),
                       e.file_suffix.size(), e.file_suffix) != 0) {
      continue;
    }
    if (e.name == "*" || e.name == f.name) {
      ++hits[i];
      return i;
    }
  }
  return std::string::npos;
}

// Self-test: verify findings against `// DLFSLINT-EXPECT: CLxxx[,CLyyy]`
// markers. A marker on a line of its own applies to the next line.
int self_test(const std::vector<std::string>& files) {
  int failures = 0;
  const ScanOutput scanned = scan_all(files);
  if (!scanned.ok) return 2;
  for (const std::string& path : files) {
    SourceFile f;
    if (!lintcommon::load(path, f)) {
      std::cerr << "dlfslint: cannot read " << path << "\n";
      return 2;
    }
    const auto it = scanned.findings.find(path);
    const std::vector<Finding>& findings =
        it == scanned.findings.end() ? std::vector<Finding>{} : it->second;
    struct Expect {
      std::string rule;
      int line;
      bool hit = false;
    };
    std::vector<Expect> expects;
    std::istringstream ss(f.orig);
    std::string line;
    int ln = 0;
    static const std::string kMarker = "DLFSLINT-EXPECT:";
    while (std::getline(ss, line)) {
      ++ln;
      const std::size_t m = line.find(kMarker);
      if (m == std::string::npos) continue;
      const std::size_t first = line.find_first_not_of(" \t");
      const bool own_line =
          first != std::string::npos && line.compare(first, 2, "//") == 0;
      std::string rules = line.substr(m + kMarker.size());
      std::istringstream rs(rules);
      std::string rule;
      while (std::getline(rs, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t\r");
        if (b == std::string::npos) continue;
        expects.push_back(
            {rule.substr(b, e - b + 1), own_line ? ln + 1 : ln, false});
      }
    }
    std::vector<bool> matched(findings.size(), false);
    for (Expect& ex : expects) {
      for (std::size_t i = 0; i < findings.size(); ++i) {
        if (!matched[i] && findings[i].rule == ex.rule &&
            findings[i].line == ex.line) {
          matched[i] = true;
          ex.hit = true;
          break;
        }
      }
      if (!ex.hit) {
        std::cerr << path << ":" << ex.line << ": MISSED expected " << ex.rule
                  << " finding\n";
        ++failures;
      }
    }
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (!matched[i]) {
        std::cerr << findings[i].file << ":" << findings[i].line
                  << ": UNEXPECTED " << findings[i].rule << " "
                  << findings[i].message << "\n";
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cout << "dlfslint self-test: all fixture expectations matched\n";
    return 0;
  }
  std::cerr << "dlfslint self-test: " << failures << " mismatch(es)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allowlist_path;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--allowlist") {
      if (++i >= argc) {
        std::cerr << "dlfslint: --allowlist needs a path\n";
        return 2;
      }
      allowlist_path = argv[i];
    } else if (a == "--self-test") {
      selftest = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: dlfslint [--allowlist FILE] PATH...\n"
                   "       dlfslint --self-test FIXTURE_PATH...\n";
      return 0;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::cerr << "dlfslint: no paths given (try --help)\n";
    return 2;
  }
  const std::vector<std::string> files =
      collect_sources(roots, /*skip_fixtures=*/!selftest);
  if (selftest) return self_test(files);

  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) allow = load_allowlist(allowlist_path);
  std::vector<int> hits(allow.size(), 0);
  int reported = 0;
  int suppressed = 0;
  const ScanOutput scanned = scan_all(files);
  if (!scanned.ok) return 2;
  for (const auto& [path, findings] : scanned.findings) {
    for (const Finding& finding : findings) {
      if (allowlisted(finding, allow, hits) != std::string::npos) {
        ++suppressed;
        continue;
      }
      std::cout << finding.file << ":" << finding.line << ": " << finding.rule
                << " [" << finding.name << "] " << finding.message << "\n";
      ++reported;
    }
  }
  // Stale-allowlist gate: a suppression that matches nothing is dead
  // weight at best and a masked regression at worst — either way the
  // entry must go when the code it excused does.
  int stale = 0;
  for (std::size_t i = 0; i < allow.size(); ++i) {
    if (hits[i] != 0) continue;
    std::cerr << "dlfslint: stale allowlist entry: " << allow[i].rule << " "
              << allow[i].file_suffix << " " << allow[i].name
              << " (matches no finding — remove it)\n";
    ++stale;
  }
  std::cout << "dlfslint: " << files.size() << " file(s), " << reported
            << " finding(s), " << suppressed << " allowlisted, "
            << scanned.inline_suppressed << " inline-allowed, " << stale
            << " stale allowlist entr" << (stale == 1 ? "y" : "ies") << "\n";
  return (reported == 0 && stale == 0) ? 0 : 1;
}

// Shared scanning utilities for the dlfslint tool family (dlfslint.cpp,
// telemetry_check.cpp). Zero-dependency, AST-less: comment/literal
// stripping that preserves byte offsets, a line index, and small token /
// bracket helpers. Header-only on purpose — the tools are single-file
// builds in CI (`g++ -o dlfslint tools/dlfslint/dlfslint.cpp`).
#pragma once

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace lintcommon {

// Replaces comments and string/char literals with spaces, preserving
// every byte position and newline so offsets map 1:1 to the original.
inline std::string strip_comments_and_literals(const std::string& src) {
  std::string out(src.size(), ' ');
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto copy_nl = [&](std::size_t at) {
    if (src[at] == '\n') out[at] = '\n';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;  // newline handled next iteration
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        copy_nl(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim"
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, p);
      const std::size_t stop =
          end == std::string::npos ? n : end + close.size();
      for (std::size_t k = i; k < stop; ++k) copy_nl(k);
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      out[i] = q;  // keep the quote itself so tokens don't merge
      ++i;
      while (i < n && src[i] != q) {
        if (src[i] == '\\') {
          copy_nl(i);
          ++i;
          if (i < n) copy_nl(i);
          ++i;
          continue;
        }
        copy_nl(i);
        ++i;
      }
      if (i < n) {
        out[i] = q;
        ++i;
      }
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

struct SourceFile {
  std::string path;
  std::string orig;
  std::string code;  // stripped
  std::vector<std::size_t> line_starts;

  void index_lines() {
    line_starts.clear();
    line_starts.push_back(0);
    for (std::size_t i = 0; i < orig.size(); ++i) {
      if (orig[i] == '\n') line_starts.push_back(i + 1);
    }
  }

  [[nodiscard]] int line_of(std::size_t off) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<int>(it - line_starts.begin());
  }
};

inline bool load(const std::string& path, SourceFile& f) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  f.path = path;
  f.orig = ss.str();
  f.code = strip_comments_and_literals(f.orig);
  f.index_lines();
  return true;
}

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

inline std::size_t skip_ws_back(const std::string& s, std::size_t i) {
  // Returns the index of the last non-ws char at or before i, or npos.
  while (i != std::string::npos &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    if (i == 0) return std::string::npos;
    --i;
  }
  return i;
}

// Matches a bracket pair forward; s[open] must be the opening char.
// Returns index of the matching closer, or npos.
inline std::size_t match_forward(const std::string& s, std::size_t open,
                                 char o, char c) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == o) ++depth;
    if (s[i] == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

// Matches a bracket pair backward; s[close] must be the closing char.
inline std::size_t match_backward(const std::string& s, std::size_t close,
                                  char o, char c) {
  int depth = 0;
  for (std::size_t i = close;; --i) {
    if (s[i] == c) ++depth;
    if (s[i] == o) {
      --depth;
      if (depth == 0) return i;
    }
    if (i == 0) break;
  }
  return std::string::npos;
}

inline bool contains_word(const std::string& s, const std::string& w) {
  std::size_t p = 0;
  while ((p = s.find(w, p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const std::size_t after = p + w.size();
    const bool right_ok = after >= s.size() || !ident_char(s[after]);
    if (left_ok && right_ok) return true;
    p += 1;
  }
  return false;
}

// Finds the next word-bounded occurrence of w at or after pos; npos if none.
inline std::size_t find_word(const std::string& s, const std::string& w,
                             std::size_t pos) {
  std::size_t p = pos;
  while ((p = s.find(w, p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const std::size_t after = p + w.size();
    const bool right_ok = after >= s.size() || !ident_char(s[after]);
    if (left_ok && right_ok) return p;
    p += 1;
  }
  return std::string::npos;
}

// Walks forward from `from` (typically just past a declaration's ';')
// and returns the offset of the '}' that closes the enclosing block —
// i.e. the first point where brace depth drops below the starting depth
// — or npos if the file ends first.
inline std::size_t enclosing_block_end(const std::string& code,
                                       std::size_t from) {
  int depth = 0;
  for (std::size_t i = from; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}') {
      --depth;
      if (depth < 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace lintcommon

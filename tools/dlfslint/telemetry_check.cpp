// telemetry_check — telemetry-coverage cross-checker for the bench
// harness (part of the dlfslint suite; same zero-dependency scanner
// style, see scan_common.hpp).
//
// Every PR that adds an InstanceStats counter must hand-thread it
// through three layers: the per-instance struct (src/dlfs/dlfs.hpp),
// the harness aggregation into RunResult (bench/harness.cpp run_dlfs),
// and the BENCH_*.json writer (JsonReport::write). PR 6/7/8 each did
// this by hand — and PR 8 demonstrably forgot a layer (qos_deferrals
// and the sharded-directory counters never reached RunResult or the
// json). This tool mechanizes the audit:
//
//   1. consumed    every InstanceStats leaf must be *read* somewhere in
//                  the implementation file (`.leaf` / `->leaf`);
//   2. aggregated  every RunResult leaf must be *assigned* in the
//                  implementation (`r.path.to.leaf`, result variable
//                  configurable via --result-var);
//   3. written     every RunResult leaf must appear as a JSON key in
//                  the implementation's string literals, under the
//                  default path-with-underscores name or a built-in
//                  rename (elapsed -> elapsed_us, prefetch.stall_ns ->
//                  prefetch_stall_us, transport.* -> the io_* /bare
//                  transport names).
//
// Struct fields of struct type (PrefetchStats, DirectoryViewStats,
// IoQueueStats, ...) are flattened recursively through every struct
// definition found in the --source files. The leaf search in (1) is
// best-effort by design — it matches the member name anywhere in the
// implementation — but a counter that is declared and threaded nowhere
// has no `.name` token at all, which is exactly the bug class this
// catches.
//
// Modes:
//   telemetry_check --stats-struct NAME --result-struct NAME
//                   --source FILE... --impl FILE [--result-var r]
//       exit 1 if any leaf fails a check.
//   telemetry_check --self-test DIR
//       DIR holds case subdirectories, each with stats.hpp, result.hpp,
//       impl.cpp and expected.txt (one expected-diagnostic substring
//       per line; empty = the case must come out clean). Exit 1 on any
//       mismatch.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>

#include "scan_common.hpp"

namespace {

namespace fs = std::filesystem;
using lintcommon::SourceFile;
using lintcommon::find_word;
using lintcommon::ident_char;
using lintcommon::match_forward;
using lintcommon::skip_ws;

struct StructDef {
  std::string name;
  // Declaration-ordered (type token, field name) pairs.
  std::vector<std::pair<std::string, std::string>> fields;
};

const std::set<std::string> kDeclKeywords = {
    "using",  "static",  "friend",    "public",  "private", "protected",
    "struct", "class",   "enum",      "typedef", "template", "operator",
    "virtual", "constexpr", "inline", "explicit"};

// Identifier tokens of `s`, in order.
std::vector<std::string> ident_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (ident_char(s[i])) {
      std::size_t b = i;
      while (i < s.size() && ident_char(s[i])) ++i;
      out.push_back(s.substr(b, i - b));
    } else {
      ++i;
    }
  }
  return out;
}

// Parses every `struct Name { ... };` in `code` into defs. Member
// functions, nested types, using-decls and access specifiers are
// skipped; only data-member declarations survive.
void parse_structs(const std::string& code,
                   std::map<std::string, StructDef>& defs) {
  std::size_t pos = 0;
  while ((pos = find_word(code, "struct", pos)) != std::string::npos) {
    std::size_t p = skip_ws(code, pos + 6);
    pos += 6;
    std::size_t nb = p;
    while (p < code.size() && ident_char(code[p])) ++p;
    if (p == nb) continue;
    const std::string name = code.substr(nb, p - nb);
    // Skip bases / `final` up to the body (or bail at ';' = fwd decl).
    std::size_t q = p;
    while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
    if (q >= code.size() || code[q] != '{') continue;
    const std::size_t close = match_forward(code, q, '{', '}');
    if (close == std::string::npos) continue;
    StructDef def{name, {}};
    std::size_t i = q + 1;
    while (i < close) {
      // One declaration: up to the ';' at member depth, nested
      // brackets (default initializers, method bodies) skipped whole.
      std::size_t stmt_begin = i;
      int depth = 0;
      std::size_t j = i;
      for (; j < close; ++j) {
        const char c = code[j];
        if (c == '{' || c == '(' || c == '[') ++depth;
        if (c == '}' || c == ')' || c == ']') --depth;
        if (c == ';' && depth == 0) break;
        if (c == ':' && depth == 0 && j + 1 < close && code[j + 1] != ':' &&
            (j == 0 || code[j - 1] != ':')) {
          // Access specifier (`public:`): restart the statement after it.
          const std::string head =
              code.substr(stmt_begin, j - stmt_begin);
          const auto toks = ident_tokens(head);
          if (toks.size() == 1 && kDeclKeywords.contains(toks[0])) {
            stmt_begin = j + 1;
          }
        }
      }
      if (j >= close) break;
      std::string decl = code.substr(stmt_begin, j - stmt_begin);
      i = j + 1;
      // Cut at the initializer / body start so `{}`, `= 0`, `{...}`
      // don't contribute tokens.
      std::size_t cut = decl.size();
      int d = 0;
      for (std::size_t k = 0; k < decl.size(); ++k) {
        const char c = decl[k];
        if (c == '(' || c == '[') ++d;
        if (c == ')' || c == ']') --d;
        if (d == 0 && (c == '{' || c == '=')) {
          cut = k;
          break;
        }
      }
      const std::string head = decl.substr(0, cut);
      if (head.find('(') != std::string::npos) continue;  // method decl
      const auto toks = ident_tokens(head);
      if (toks.size() < 2) continue;
      if (kDeclKeywords.contains(toks.front())) continue;
      def.fields.emplace_back(toks[toks.size() - 2], toks.back());
    }
    defs[name] = def;
  }
}

// Flattens `root` through `defs` into dotted leaf paths.
void flatten(const std::map<std::string, StructDef>& defs,
             const std::string& root, const std::string& prefix,
             std::vector<std::string>& out) {
  const auto it = defs.find(root);
  if (it == defs.end()) return;
  for (const auto& [type, field] : it->second.fields) {
    if (defs.contains(type)) {
      flatten(defs, type, prefix + field + ".", out);
    } else {
      out.push_back(prefix + field);
    }
  }
}

std::string leaf_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

// `.leaf` or `->leaf`, word-bounded, anywhere in stripped code.
bool member_read(const std::string& code, const std::string& leaf) {
  std::size_t p = 0;
  while ((p = find_word(code, leaf, p)) != std::string::npos) {
    const std::size_t at = p;
    p += leaf.size();
    if (at == 0) continue;
    if (code[at - 1] == '.' ||
        (code[at - 1] == '>' && at >= 2 && code[at - 2] == '-')) {
      return true;
    }
  }
  return false;
}

// `var.path.to.leaf`, word-bounded on both ends.
bool assigned_path(const std::string& code, const std::string& var,
                   const std::string& path) {
  const std::string needle = var + "." + path;
  std::size_t p = 0;
  while ((p = code.find(needle, p)) != std::string::npos) {
    const bool left_ok = p == 0 || !ident_char(code[p - 1]);
    const std::size_t after = p + needle.size();
    const bool right_ok = after >= code.size() || !ident_char(code[after]);
    p += needle.size();
    if (left_ok && right_ok) return true;
  }
  return false;
}

// Built-in JSON key renames (path -> key); everything else maps dots to
// underscores.
std::string json_key(const std::string& path) {
  static const std::map<std::string, std::string> kRenames = {
      {"elapsed", "elapsed_us"},
      {"prefetch.stall_ns", "prefetch_stall_us"},
      {"transport.timeouts", "io_timeouts"},
      {"transport.connections_lost", "connections_lost"},
      {"transport.reconnects", "reconnects"},
      {"transport.replays", "replays"},
  };
  const auto it = kRenames.find(path);
  if (it != kRenames.end()) return it->second;
  std::string key = path;
  for (char& c : key) {
    if (c == '.') c = '_';
  }
  return key;
}

struct CheckInput {
  std::vector<std::string> source_files;  // struct definitions
  std::string impl_file;                  // aggregation + json writer
  std::string stats_struct;
  std::string result_struct;
  std::string result_var = "r";
};

std::vector<std::string> run_checks(const CheckInput& in) {
  std::vector<std::string> diags;
  std::map<std::string, StructDef> defs;
  for (const std::string& path : in.source_files) {
    SourceFile f;
    if (!lintcommon::load(path, f)) {
      diags.push_back("cannot read source file: " + path);
      return diags;
    }
    parse_structs(f.code, defs);
  }
  SourceFile impl;
  if (!lintcommon::load(in.impl_file, impl)) {
    diags.push_back("cannot read impl file: " + in.impl_file);
    return diags;
  }
  if (!defs.contains(in.stats_struct)) {
    diags.push_back("struct not found in sources: " + in.stats_struct);
  }
  if (!defs.contains(in.result_struct)) {
    diags.push_back("struct not found in sources: " + in.result_struct);
  }
  if (!diags.empty()) return diags;

  std::vector<std::string> stats_leaves, result_leaves;
  flatten(defs, in.stats_struct, "", stats_leaves);
  flatten(defs, in.result_struct, "", result_leaves);

  for (const std::string& path : stats_leaves) {
    if (!member_read(impl.code, leaf_of(path))) {
      diags.push_back(in.stats_struct + "." + path +
                      " is declared but never consumed by " + in.impl_file +
                      " — thread it into the aggregation (or delete the "
                      "counter)");
    }
  }
  for (const std::string& path : result_leaves) {
    if (!assigned_path(impl.code, in.result_var, path)) {
      diags.push_back(in.result_struct + "." + path +
                      " is never assigned (no '" + in.result_var + "." +
                      path + "') in " + in.impl_file);
    }
    // The writer emits keys either as plain quoted strings or as
    // escaped quotes inside a C++ literal (`\"key\"`): accept both.
    const std::string key = json_key(path);
    const bool written =
        impl.orig.find("\"" + key + "\"") != std::string::npos ||
        impl.orig.find("\\\"" + key + "\\\"") != std::string::npos;
    if (!written) {
      diags.push_back(in.result_struct + "." + path +
                      " never reaches the json report (no \"" + key +
                      "\" key) in " + in.impl_file);
    }
  }
  return diags;
}

int self_test(const std::string& dir) {
  int failures = 0;
  std::vector<fs::path> cases;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_directory()) cases.push_back(e.path());
  }
  std::sort(cases.begin(), cases.end());
  if (cases.empty()) {
    std::cerr << "telemetry_check: no fixture cases under " << dir << "\n";
    return 2;
  }
  for (const fs::path& c : cases) {
    CheckInput in;
    in.source_files = {(c / "stats.hpp").string(), (c / "result.hpp").string()};
    in.impl_file = (c / "impl.cpp").string();
    in.stats_struct = "InstanceStats";
    in.result_struct = "RunResult";
    const std::vector<std::string> diags = run_checks(in);
    std::vector<std::string> expected;
    {
      std::ifstream exp(c / "expected.txt");
      if (!exp) {
        std::cerr << "telemetry_check: missing " << (c / "expected.txt")
                  << "\n";
        return 2;
      }
      std::string line;
      while (std::getline(exp, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty() && line[0] != '#') expected.push_back(line);
      }
    }
    std::vector<bool> used(diags.size(), false);
    for (const std::string& want : expected) {
      bool hit = false;
      for (std::size_t i = 0; i < diags.size(); ++i) {
        if (!used[i] && diags[i].find(want) != std::string::npos) {
          used[i] = true;
          hit = true;
          break;
        }
      }
      if (!hit) {
        std::cerr << c.filename().string() << ": MISSED expected diagnostic '"
                  << want << "'\n";
        ++failures;
      }
    }
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (!used[i]) {
        std::cerr << c.filename().string() << ": UNEXPECTED diagnostic: "
                  << diags[i] << "\n";
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cout << "telemetry_check self-test: all fixture expectations "
                 "matched\n";
    return 0;
  }
  std::cerr << "telemetry_check self-test: " << failures << " mismatch(es)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckInput in;
  std::string selftest_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) {
        std::cerr << "telemetry_check: " << a << " needs a value\n";
        std::exit(2);
      }
      return argv[i];
    };
    if (a == "--source") {
      in.source_files.push_back(next());
    } else if (a == "--impl") {
      in.impl_file = next();
    } else if (a == "--stats-struct") {
      in.stats_struct = next();
    } else if (a == "--result-struct") {
      in.result_struct = next();
    } else if (a == "--result-var") {
      in.result_var = next();
    } else if (a == "--self-test") {
      selftest_dir = next();
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: telemetry_check --stats-struct NAME "
                   "--result-struct NAME --source FILE... --impl FILE "
                   "[--result-var r]\n"
                   "       telemetry_check --self-test FIXTURE_DIR\n";
      return 0;
    } else {
      std::cerr << "telemetry_check: unknown argument " << a << "\n";
      return 2;
    }
  }
  if (!selftest_dir.empty()) return self_test(selftest_dir);
  if (in.source_files.empty() || in.impl_file.empty() ||
      in.stats_struct.empty() || in.result_struct.empty()) {
    std::cerr << "telemetry_check: need --stats-struct, --result-struct, "
                 "--source and --impl (try --help)\n";
    return 2;
  }
  const std::vector<std::string> diags = run_checks(in);
  for (const std::string& d : diags) {
    std::cout << "telemetry_check: " << d << "\n";
  }
  std::cout << "telemetry_check: " << in.stats_struct << " + "
            << in.result_struct << " against " << in.impl_file << ": "
            << diags.size() << " gap(s)\n";
  return diags.empty() ? 0 : 1;
}

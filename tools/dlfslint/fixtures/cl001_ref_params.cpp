// dlfslint fixture: CL001 — Task<> coroutines taking reference /
// string_view / span parameters. These snippets are scanned, never
// compiled; each marked line must produce exactly the expected finding.

#include <span>
#include <string>
#include <string_view>

#include "sim/task.hpp"

namespace fixture {

struct Dev {
  int id = 0;
};

dlsim::Task<void> by_lvalue_ref(Dev& dev) {  // DLFSLINT-EXPECT: CL001
  co_await do_io(dev.id);
}

dlsim::Task<int> by_const_ref(const std::string& name) {  // DLFSLINT-EXPECT: CL001
  co_return static_cast<int>(name.size());
}

dlsim::Task<void> by_rvalue_ref(std::string&& s) {  // DLFSLINT-EXPECT: CL001
  co_await consume(std::move(s));
}

dlsim::Task<void> by_string_view(std::string_view sv) {  // DLFSLINT-EXPECT: CL001
  co_await log_line(sv);
}

dlsim::Task<void> by_span(std::span<int> xs) {  // DLFSLINT-EXPECT: CL001
  co_await sum(xs);
}

// DLFSLINT-EXPECT: CL001
dlsim::Task<void> mixed(int n, const Dev& dev, int m) {
  co_await do_io(dev.id + n + m);
}

// Trailing-return-type spelling is flagged too.
// DLFSLINT-EXPECT: CL001
auto trailing_ref(Dev& dev) -> dlsim::Task<void> {
  co_await do_io(dev.id);
}

// --- negative cases: must produce NO findings -------------------------------

// By value: safe, the frame owns its copy.
dlsim::Task<void> by_value(std::string name, Dev dev, int n) {
  co_await do_io(dev.id + n + static_cast<int>(name.size()));
}

// Pointer params are the sanctioned idiom for shared referents.
dlsim::Task<void> by_pointer(Dev* dev) { co_await do_io(dev->id); }

// A non-coroutine returning Task (composer) may forward references: no
// frame of its own ever stores them.
dlsim::Task<void> composer(Dev& dev) { return by_value({}, dev, 1); }

// Declarations are not flagged; the definition site is.
dlsim::Task<void> declared_elsewhere(const Dev& dev);

}  // namespace fixture

// dlfslint fixture: CL006 — view/span escape.
//
// Spans handed out by bread_views / ViewBatch::samples[i].pieces borrow
// chunks pinned by the prefetcher; the lease (ViewLease or the next
// bread_views call) releases the pins and the pool scribbles the bytes
// (scribble_on_free). Any span stored into state that outlives the
// lease — a member, a static, a member container — is a use-after-free
// waiting for the next recycle. Copy the bytes instead.
//
// Fixtures are scanned, never compiled.

#include <cstddef>
#include <span>
#include <vector>

#include "dlfs/dlfs.hpp"

namespace fixture {

class Escaper {
 public:
  dlsim::Task<void> bad_member_span(core::DlfsInstance* inst) {
    auto vb = co_await inst->bread_views(8);
    first_ = vb.samples[0].pieces[0];  // DLFSLINT-EXPECT: CL006
  }

  dlsim::Task<void> bad_member_batch(core::DlfsInstance* inst) {
    batch_ = co_await inst->bread_views(8);  // DLFSLINT-EXPECT: CL006
  }

  dlsim::Task<void> bad_container_insert(core::DlfsInstance* inst) {
    auto vb = co_await inst->bread_views(8);
    for (const auto& s : vb.samples) {
      spans_.push_back(s.pieces[0]);  // DLFSLINT-EXPECT: CL006
    }
  }

  dlsim::Task<void> bad_static_span(core::DlfsInstance* inst) {
    auto vb = co_await inst->bread_views(8);
    static std::span<const std::byte> last =
        vb.samples[0].pieces[0];  // DLFSLINT-EXPECT: CL006
    (void)last;
  }

  // Negative: consuming the spans inside the lease scope is the whole
  // point of zero-copy delivery.
  dlsim::Task<std::size_t> ok_consume_in_scope(core::DlfsInstance* inst) {
    auto vb = co_await inst->bread_views(8);
    std::size_t total = 0;
    for (const auto& s : vb.samples) {
      for (const auto piece : s.pieces) total += piece.size();
    }
    co_return total;
  }

  // Negative: copying the bytes out is always safe.
  dlsim::Task<void> ok_copy_bytes(core::DlfsInstance* inst) {
    auto vb = co_await inst->bread_views(8);
    std::vector<std::byte> keep;
    for (const auto& s : vb.samples) {
      const auto piece = s.pieces[0];
      keep.insert(keep.end(), piece.begin(), piece.end());
    }
  }

  // Negative: building the batch's own piece list (local receiver) is
  // the producer side, not an escape.
  static void ok_producer_side(core::ViewSample* vs,
                               std::span<const std::byte> piece) {
    vs->pieces.push_back(piece);
  }

 private:
  std::span<const std::byte> first_;
  core::ViewBatch batch_;
  std::vector<std::span<const std::byte>> spans_;
};

}  // namespace fixture

// dlfslint fixture: stale-allowlist gate.
//
// This file produces exactly one finding (CL001 below). allow_clean.txt
// suppresses it with one matching entry and the scan exits 0;
// allow_stale.txt adds a second entry that matches nothing, which the
// gate must report ("stale allowlist entry") with a non-zero exit so
// suppressions cannot outlive the code they excused.
//
// Fixtures are scanned, never compiled.

#include <string>

#include "sim/task.hpp"

namespace fixture {

// DLFSLINT-EXPECT: CL001
dlsim::Task<void> stale_bait(const std::string& name) {
  co_await dlsim::Task<void>{};
  (void)name;
}

}  // namespace fixture

// telemetry_check fixture (clean case): per-instance counters, all of
// which the paired impl.cpp consumes.
#pragma once

#include <cstdint>

namespace fixture {

struct PrefetchStats {
  std::uint64_t units_issued = 0;
  std::uint64_t stall_ns = 0;
};

struct InstanceStats {
  std::uint64_t samples_delivered = 0;
  std::uint64_t bytes_copied = 0;
  PrefetchStats prefetch{};
};

}  // namespace fixture

// telemetry_check fixture (clean case): aggregate result, every field
// assigned by impl.cpp and present as a json key.
#pragma once

#include <cstdint>

#include "stats.hpp"

namespace fixture {

struct RunResult {
  double samples_per_sec = 0.0;
  std::uint64_t bytes_copied = 0;
  PrefetchStats prefetch{};
};

}  // namespace fixture

// telemetry_check fixture (clean case): fully threaded — every
// InstanceStats leaf is read, every RunResult leaf is assigned and has
// a json key.

#include "result.hpp"
#include "stats.hpp"

namespace fixture {

void aggregate(const InstanceStats& st, RunResult& r) {
  r.bytes_copied += st.bytes_copied;
  r.prefetch.units_issued += st.prefetch.units_issued;
  r.prefetch.stall_ns += st.prefetch.stall_ns;
  r.samples_per_sec = static_cast<double>(st.samples_delivered);
}

const char* json_keys() {
  return "\"samples_per_sec\" \"bytes_copied\" \"prefetch_units_issued\" "
         "\"prefetch_stall_us\"";
}

}  // namespace fixture

// telemetry_check fixture (gaps case): consumes samples_delivered only,
// assigns samples and half_done only, writes the "samples" key only.

#include "result.hpp"
#include "stats.hpp"

namespace fixture {

void aggregate(const InstanceStats& st, RunResult& r) {
  r.samples += st.samples_delivered;
  r.half_done += st.samples_delivered / 2;
}

const char* json_keys() { return "\"samples\""; }

}  // namespace fixture

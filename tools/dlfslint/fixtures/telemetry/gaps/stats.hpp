// telemetry_check fixture (gaps case): ghost_reads is declared but the
// paired impl.cpp never reads it — the PR-8 bug shape.
#pragma once

#include <cstdint>

namespace fixture {

struct InstanceStats {
  std::uint64_t samples_delivered = 0;
  std::uint64_t ghost_reads = 0;
};

}  // namespace fixture

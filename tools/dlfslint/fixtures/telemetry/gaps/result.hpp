// telemetry_check fixture (gaps case): half_done is aggregated but
// never written to json; dropped_total is neither aggregated nor
// written.
#pragma once

#include <cstdint>

namespace fixture {

struct RunResult {
  std::uint64_t samples = 0;
  std::uint64_t half_done = 0;
  std::uint64_t dropped_total = 0;
};

}  // namespace fixture

// dlfslint fixture: CL007 — detached daemon hygiene.
//
// Two obligations for spawn_daemon call sites: (1) pass an explicit
// name, because the watchdog diagnoses a wedged sim by naming blocked
// coroutines and an unnamed daemon is a blank line in that report;
// (2) a daemon's infinite loop must park on an Event / Channel /
// Semaphore — a loop whose only awaits are delay() timers busy-polls
// the clock, burns virtual time, and keeps an otherwise idle simulator
// from quiescing.
//
// Fixtures are scanned, never compiled.

#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace fixture {

struct Daemons {
  dlsim::Simulator* sim = nullptr;
  dlsim::Event wake;
  bool stop = false;

  dlsim::Task<void> ticker_loop() {
    for (;;) {  // DLFSLINT-EXPECT: CL007
      co_await sim->delay(1000);
    }
  }

  dlsim::Task<void> parked_loop() {
    for (;;) {
      dlsim::Task<void> parked = wake.wait();
      co_await std::move(parked);
      if (stop) co_return;
      wake.reset();
      co_await sim->delay(10);
    }
  }

  dlsim::Task<void> one_shot() {
    co_await sim->delay(500);
    stop = true;
  }

  void bad_unnamed() {
    // DLFSLINT-EXPECT: CL007
    sim->spawn_daemon(parked_loop());
  }

  void bad_busy_ticker() {
    sim->spawn_daemon(ticker_loop(), "fixture-ticker");
  }

  void bad_unnamed_lambda_ticker() {
    // Both violations at once: no name, and the inline body polls.
    // DLFSLINT-EXPECT: CL007
    sim->spawn_daemon([](dlsim::Simulator* s) -> dlsim::Task<void> {
      while (true) {  // DLFSLINT-EXPECT: CL007
        co_await s->delay(100);
      }
    }(sim));
  }

  void ok_named_parked() {
    sim->spawn_daemon(parked_loop(), "fixture-parked");
  }

  void ok_named_one_shot() {
    sim->spawn_daemon(one_shot(), "fixture-oneshot");
  }
};

}  // namespace fixture

// dlfslint fixture: CL005 — lock held across a suspension point.
//
// Pass (a): an AccessSlice live in scope at a co_await. Slices assert
// whole-method suspension-free critical sections (src/sim/check.hpp);
// awaiting inside one is a DataRaceError waiting for the interleaving
// the dynamic checker happens not to run.
//
// Pass (b): whole-repo lock-order cycles. Two functions that acquire
// the same pair of sim::Mutexes in opposite orders deadlock under the
// wrong interleaving; the static edge graph catches the inversion
// without needing a test to interleave it.
//
// Fixtures are scanned, never compiled.

#include "sim/check.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace fixture {

struct Sliced {
  dlsim::check::AccessLedger ledger{"fixture"};
  dlsim::Simulator* sim = nullptr;

  dlsim::Task<void> bad_await_inside_slice() {
    dlsim::check::AccessSlice slice{ledger, /*write=*/true};
    co_await sim->delay(10);  // DLFSLINT-EXPECT: CL005
  }

  dlsim::Task<void> bad_await_later_in_scope() {
    int work = 0;
    dlsim::check::AccessSlice slice{ledger, /*write=*/false};
    ++work;
    co_await sim->delay(work);  // DLFSLINT-EXPECT: CL005
  }

  // Negative: the slice closes with its own block before the await —
  // the sanctioned shape.
  dlsim::Task<void> ok_slice_closed_before_await() {
    {
      dlsim::check::AccessSlice slice{ledger, /*write=*/true};
      // critical section, no suspension
    }
    co_await sim->delay(10);
  }

  // Negative: suppressed deliberate violation — the inline-allow
  // mechanism itself is under test here.
  dlsim::Task<void> allowed_await_inside_slice() {
    dlsim::check::AccessSlice slice{ledger, /*write=*/true};
    co_await sim->delay(10);  // DLFSLINT-ALLOW: CL005
  }
};

struct Inverted {
  dlsim::Mutex a;
  dlsim::Mutex b;

  dlsim::Task<void> lock_a_then_b() {
    auto ga = co_await a.scoped_lock();
    // DLFSLINT-EXPECT: CL005
    auto gb = co_await b.scoped_lock();
    co_return;
  }

  dlsim::Task<void> lock_b_then_a() {
    auto gb = co_await b.scoped_lock();
    // DLFSLINT-EXPECT: CL005
    auto ga = co_await a.scoped_lock();
    co_return;
  }
};

// Negative: consistent order everywhere — edges c->d from both
// functions, no cycle.
struct Consistent {
  dlsim::Mutex c;
  dlsim::Mutex d;

  dlsim::Task<void> first_user() {
    auto gc = co_await c.scoped_lock();
    auto gd = co_await d.scoped_lock();
    co_return;
  }

  dlsim::Task<void> second_user() {
    co_await c.lock();
    co_await d.lock();
    d.unlock();
    c.unlock();
    co_return;
  }
};

// Negative: a guard held across a non-lock await with no nested
// acquisition (the ext4 big-kernel-lock pattern) is sanctioned.
struct BigLock {
  dlsim::Mutex kernel_lock;
  dlsim::Simulator* sim = nullptr;

  dlsim::Task<void> ok_guard_across_compute() {
    auto guard = co_await kernel_lock.scoped_lock();
    co_await sim->delay(100);
    co_return;
  }
};

}  // namespace fixture

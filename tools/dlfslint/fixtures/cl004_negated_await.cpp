// dlfslint fixture: CL004 — `if (!co_await ...)` / `while (!co_await
// ...)`: the negated await-in-condition shape GCC 12 miscompiles (the
// coroutine frame is clobbered around the await). The repo convention is
// hoisting the await into a named local (see spdk/nvmf.cpp probe()).

#include "sim/task.hpp"

namespace fixture {

dlsim::Task<bool> probe_once();

dlsim::Task<void> bad_if() {
  if (!co_await probe_once()) {  // DLFSLINT-EXPECT: CL004
    co_return;
  }
}

dlsim::Task<void> bad_if_parenthesized() {
  if (!(co_await probe_once())) {  // DLFSLINT-EXPECT: CL004
    co_return;
  }
}

dlsim::Task<void> bad_while() {
  while (!co_await probe_once()) {  // DLFSLINT-EXPECT: CL004
    co_await probe_once();
  }
}

dlsim::Task<void> bad_if_spread() {
  if (!co_await  // DLFSLINT-EXPECT: CL004
          probe_once()) {
    co_return;
  }
}

// --- negative cases ---------------------------------------------------------

// Hoisted into a named local: the sanctioned shape.
dlsim::Task<void> ok_hoisted() {
  const bool ok = co_await probe_once();
  if (!ok) co_return;
}

// Un-negated await in a condition is not the miscompiled shape.
dlsim::Task<void> ok_positive() {
  if (co_await probe_once()) co_return;
}

// `!` applied to something other than the await.
dlsim::Task<void> ok_other_negation(bool flag) {
  if (!flag) co_await probe_once();
}

}  // namespace fixture

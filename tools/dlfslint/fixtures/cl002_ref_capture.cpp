// dlfslint fixture: CL002 — lambda coroutines capturing by reference.
// The lambda object dies at the end of the full-expression; the frame's
// captures dangle on the first resume.

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace fixture {

void cases(dlsim::Simulator& sim, int counter) {
  // DLFSLINT-EXPECT: CL002
  auto bad_default = [&]() -> dlsim::Task<void> {
    co_await sim.delay(1);
    ++counter;
  };

  // DLFSLINT-EXPECT: CL002
  auto bad_named = [&counter]() -> dlsim::Task<void> {
    co_await nothing();
    ++counter;
  };

  // DLFSLINT-EXPECT: CL002
  auto bad_mixed = [n = 1, &counter]() -> dlsim::Task<void> {
    co_await nothing();
    counter += n;
  };

  // Reference capture AND a reference parameter: both rules fire.
  // DLFSLINT-EXPECT: CL001, CL002
  auto doubly_bad = [&counter](int& x) -> dlsim::Task<void> {
    co_await nothing();
    counter += x;
  };

  // --- negative cases -------------------------------------------------------

  // By-value captures are owned by the lambda *object*, which the frame
  // copies; still subtle, but not the dangling-reference hazard.
  auto ok_value = [counter]() -> dlsim::Task<void> {
    co_await nothing();
    (void)counter;
  };

  // Init-capture by move: owned, fine.
  auto ok_move = [c = counter]() -> dlsim::Task<void> {
    co_await nothing();
    (void)c;
  };

  // Captureless immediately-invoked lambda with pointer params: the
  // sanctioned test idiom.
  auto t = [](dlsim::Simulator* s, int* out) -> dlsim::Task<void> {
    co_await s->delay(1);
    ++*out;
  }(&sim, &counter);

  // A non-coroutine lambda capturing by reference is ordinary C++.
  auto ok_plain = [&counter] { return counter + 1; };

  (void)bad_default;
  (void)bad_named;
  (void)bad_mixed;
  (void)doubly_bad;
  (void)ok_value;
  (void)ok_move;
  (void)t;
  (void)ok_plain;
}

}  // namespace fixture

// dlfslint fixture: CL003 — detached coroutines (spawn / spawn_daemon)
// built from lambdas that capture `this` (directly or via a default
// capture). The daemon can outlive the object; `this` then dangles.

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace fixture {

class Server {
 public:
  explicit Server(dlsim::Simulator& sim) : sim_(&sim) {}

  void start() {
    // DLFSLINT-EXPECT: CL003
    sim_->spawn_daemon([this]() -> dlsim::Task<void> {
      co_await sim_->delay(1);
    }(),
                       "fixture-this");
  }

  void start_by_default_ref() {
    // A default ref capture is both a dangling capture (CL002) and an
    // implicit `this` capture on a detached coroutine (CL003).
    // DLFSLINT-EXPECT: CL002, CL003
    sim_->spawn([&]() -> dlsim::Task<void> { co_await sim_->delay(1); }());
  }

  void start_by_default_copy() {
    // DLFSLINT-EXPECT: CL003
    sim_->spawn([=]() -> dlsim::Task<void> { co_await sim_->delay(1); }());
  }

  void start_deref_this() {
    // DLFSLINT-EXPECT: CL003
    sim_->spawn_daemon([*this]() -> dlsim::Task<void> {
      co_await sim_->delay(1);
    }(),
                       "fixture-deref");
  }

  // --- negative cases -------------------------------------------------------

  // Member coroutine spawned directly (no lambda): the established repo
  // pattern — lifetime is the owner's responsibility, visible at the
  // call site, and a liveness token guards the detached paths.
  void start_member() { sim_->spawn_daemon(loop(), "fixture-member"); }

  // Lambda with explicit value state only: owns what it uses.
  void start_token(int token) {
    sim_->spawn([](dlsim::Simulator* s, int t) -> dlsim::Task<void> {
      co_await s->delay(t);
    }(sim_, token));
  }

 private:
  dlsim::Task<void> loop() {
    co_await sim_->delay(1);
    co_return;
  }

  dlsim::Simulator* sim_;
};

}  // namespace fixture

#!/usr/bin/env bash
# Header self-sufficiency check: compile every public header under src/
# standalone (-fsyntax-only) so no header leans on transitive includes
# from its usual inclusion order. Usage: check_headers.sh [CXX]
set -u

cxx="${1:-${CXX:-c++}}"
root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
count=0
for h in $(find "$root/src" -name '*.hpp' | LC_ALL=C sort); do
  count=$((count + 1))
  rel="${h#"$root"/src/}"
  if ! echo "#include \"$rel\"" |
    "$cxx" -std=c++20 -Wall -Wextra -Werror -fsyntax-only \
      -I "$root/src" -x c++ -; then
    echo "check_headers: NOT self-sufficient: src/$rel" >&2
    fail=1
  fi
done
if [ "$fail" -eq 0 ]; then
  echo "check_headers: $count header(s) compile standalone"
fi
exit $fail
